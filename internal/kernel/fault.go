package kernel

import (
	"errors"
	"math/rand"
	"strings"
)

// Fault injection: a deterministic, seeded model of the ways a real
// disk write path fails under a hostile system — I/O errors, a full
// filesystem, torn (short) writes, latency spikes, and crashes that
// kill the writing process mid-write. The profiling pipeline's claim
// is that it degrades, not lies, under exactly these failures; the
// injector makes that claim testable end to end (see
// internal/harness/chaos.go).
//
// Determinism: the injector's RNG is consumed only for writes whose
// path matches the plan's prefix, so a fixed (machine seed, plan)
// reproduces the identical fault schedule run after run.

// Injected error sentinels. They model -EIO, -ENOSPC, and the writer
// dying mid-syscall; writers branch on them with errors.Is.
var (
	ErrIO      = errors.New("kernel: I/O error (injected)")
	ErrNoSpace = errors.New("kernel: no space left on device (injected)")
	ErrCrashed = errors.New("kernel: process killed mid-write")
)

// FaultKind selects a failure mode for one write.
type FaultKind int

// Failure modes.
const (
	// FaultNone lets the write through untouched.
	FaultNone FaultKind = iota
	// FaultEIO fails the write with nothing reaching the disk.
	FaultEIO
	// FaultENOSPC writes a strict prefix, then fails (device full).
	FaultENOSPC
	// FaultTorn writes a strict prefix and reports an I/O error — the
	// classic torn write a crash-consistent format must survive.
	FaultTorn
	// FaultLatency completes the write but stalls the machine for the
	// plan's LatencyCycles (a degraded disk, not a lossy one).
	FaultLatency
	// FaultCrash writes a prefix and kills the writing process; every
	// later write by that process fails with ErrCrashed.
	FaultCrash
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultEIO:
		return "EIO"
	case FaultENOSPC:
		return "ENOSPC"
	case FaultTorn:
		return "torn"
	case FaultLatency:
		return "latency"
	case FaultCrash:
		return "crash"
	default:
		return "none"
	}
}

// FaultPoint scripts an exact fault: the Nth prefix-matched write (0
// based) fails with Kind, regardless of the probabilistic schedule.
type FaultPoint struct {
	Write int
	Kind  FaultKind
}

// FaultPlan is a deterministic fault schedule.
type FaultPlan struct {
	// Seed drives the injector's private RNG.
	Seed int64
	// PathPrefix restricts injection to writes under this path ("" =
	// every write).
	PathPrefix string

	// Per-write probabilities, evaluated in this order; their sum
	// should stay <= 1.
	PEIO, PENOSPC, PTorn, PLatency, PCrash float64

	// LatencyCycles is the stall per FaultLatency (default: 4x the
	// synchronous-commit latency).
	LatencyCycles uint64
	// MaxFaults caps probabilistic injections (0 = unlimited); scripted
	// points always fire.
	MaxFaults int
	// Script forces exact faults at exact matched-write indices.
	Script []FaultPoint
}

// FaultStats counts injector activity.
type FaultStats struct {
	// Writes is every write seen; Matched is those under PathPrefix.
	Writes, Matched uint64
	// Per-kind injection counts.
	EIO, ENoSpace, Torn, Latency, Crashes uint64
	// Injected is the total number of faults delivered.
	Injected uint64
}

// Destructive reports how many injected faults can lose or damage
// persisted data (everything except latency spikes).
func (s FaultStats) Destructive() uint64 {
	return s.EIO + s.ENoSpace + s.Torn + s.Crashes
}

type faultInjector struct {
	plan  FaultPlan
	rng   *rand.Rand
	stats FaultStats
}

// SetFaultInjector installs (or, with a zero-probability empty plan,
// effectively clears) the write-path fault schedule.
func (k *Kernel) SetFaultInjector(plan FaultPlan) {
	if plan.LatencyCycles == 0 {
		plan.LatencyCycles = 4 * SyncLatencyCycles
	}
	k.injector = &faultInjector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// FaultStats returns the injector's counters (zero value if no
// injector is installed).
func (k *Kernel) FaultStats() FaultStats {
	if k.injector == nil {
		return FaultStats{}
	}
	return k.injector.stats
}

// decide picks the fault for one write. The RNG is touched only for
// prefix-matched writes, keeping schedules deterministic per plan.
func (fi *faultInjector) decide(path string) FaultKind {
	fi.stats.Writes++
	if !strings.HasPrefix(path, fi.plan.PathPrefix) {
		return FaultNone
	}
	idx := int(fi.stats.Matched)
	fi.stats.Matched++
	for _, pt := range fi.plan.Script {
		if pt.Write == idx {
			fi.note(pt.Kind)
			return pt.Kind
		}
	}
	if fi.plan.MaxFaults > 0 && fi.stats.Injected >= uint64(fi.plan.MaxFaults) {
		return FaultNone
	}
	r := fi.rng.Float64()
	for _, c := range []struct {
		p float64
		k FaultKind
	}{
		{fi.plan.PEIO, FaultEIO},
		{fi.plan.PENOSPC, FaultENOSPC},
		{fi.plan.PTorn, FaultTorn},
		{fi.plan.PLatency, FaultLatency},
		{fi.plan.PCrash, FaultCrash},
	} {
		if r < c.p {
			fi.note(c.k)
			return c.k
		}
		r -= c.p
	}
	return FaultNone
}

func (fi *faultInjector) note(kind FaultKind) {
	switch kind {
	case FaultEIO:
		fi.stats.EIO++
	case FaultENOSPC:
		fi.stats.ENoSpace++
	case FaultTorn:
		fi.stats.Torn++
	case FaultLatency:
		fi.stats.Latency++
	case FaultCrash:
		fi.stats.Crashes++
	default:
		return
	}
	fi.stats.Injected++
}

// cutShort picks how many bytes of an n-byte payload land on disk for
// a failing write: always a strict prefix, so a "failed" write can
// never silently equal a successful one (that would let a retry
// double-count).
func (fi *faultInjector) cutShort(n int) int {
	if n <= 0 {
		return 0
	}
	return fi.rng.Intn(n) // [0, n-1]
}

// cutTorn is cutShort but guarantees at least one byte lands when
// possible, producing a genuinely torn (not merely absent) record.
func (fi *faultInjector) cutTorn(n int) int {
	if n < 2 {
		return 0
	}
	return 1 + fi.rng.Intn(n-1) // [1, n-1]
}

// Read-path fault injection. The write injector above attacks data on
// its way to the disk; this one attacks it on the way back — the EIO a
// degraded platter delivers when the offline tools (vipreport, the
// integrity assembly) read profile artifacts back. The salvage readers'
// contract is the same as on the write side: an unreadable file must
// surface as loud degradation, never as silent absence that could let a
// sample misattribute through a missing epoch.

// ReadFaultPlan is a deterministic read-fault schedule for a Disk.
type ReadFaultPlan struct {
	// Seed drives the injector's private RNG.
	Seed int64
	// PathPrefix restricts injection to reads under this path ("" =
	// every read).
	PathPrefix string
	// PEIO is the per-read probability of an injected EIO.
	PEIO float64
	// MaxFaults caps injections (0 = unlimited).
	MaxFaults int
	// Script forces EIO at exact matched-read indices (0 based),
	// regardless of the probabilistic schedule.
	Script []int
}

// ReadFaultStats counts read-injector activity.
type ReadFaultStats struct {
	// Reads is every read seen; Matched is those under PathPrefix.
	Reads, Matched uint64
	// EIO is the number of injected read failures.
	EIO uint64
}

type readFaultInjector struct {
	plan  ReadFaultPlan
	rng   *rand.Rand
	stats ReadFaultStats
}

// decide reports whether this read fails. As on the write side, the RNG
// is consumed only for prefix-matched reads, so a fixed plan reproduces
// the identical fault schedule against the identical read sequence.
func (ri *readFaultInjector) decide(path string) bool {
	ri.stats.Reads++
	if !strings.HasPrefix(path, ri.plan.PathPrefix) {
		return false
	}
	idx := int(ri.stats.Matched)
	ri.stats.Matched++
	for _, w := range ri.plan.Script {
		if w == idx {
			ri.stats.EIO++
			return true
		}
	}
	if ri.plan.MaxFaults > 0 && ri.stats.EIO >= uint64(ri.plan.MaxFaults) {
		return false
	}
	if ri.rng.Float64() < ri.plan.PEIO {
		ri.stats.EIO++
		return true
	}
	return false
}
