package kernel

import (
	"errors"
	"math/rand"
	"strings"
)

// Fault injection: a deterministic, seeded model of the ways a real
// disk write path fails under a hostile system — I/O errors, a full
// filesystem, torn (short) writes, latency spikes, and crashes that
// kill the writing process mid-write. The profiling pipeline's claim
// is that it degrades, not lies, under exactly these failures; the
// injector makes that claim testable end to end (see
// internal/harness/chaos.go).
//
// Determinism: the injector's RNG is consumed only for writes whose
// path matches the plan's prefix, so a fixed (machine seed, plan)
// reproduces the identical fault schedule run after run.

// Injected error sentinels. They model -EIO, -ENOSPC, and the writer
// dying mid-syscall; writers branch on them with errors.Is.
var (
	ErrIO      = errors.New("kernel: I/O error (injected)")
	ErrNoSpace = errors.New("kernel: no space left on device (injected)")
	ErrCrashed = errors.New("kernel: process killed mid-write")
)

// FaultKind selects a failure mode for one write.
type FaultKind int

// Failure modes.
const (
	// FaultNone lets the write through untouched.
	FaultNone FaultKind = iota
	// FaultEIO fails the write with nothing reaching the disk.
	FaultEIO
	// FaultENOSPC writes a strict prefix, then fails (device full).
	FaultENOSPC
	// FaultTorn writes a strict prefix and reports an I/O error — the
	// classic torn write a crash-consistent format must survive.
	FaultTorn
	// FaultLatency completes the write but stalls the machine for the
	// plan's LatencyCycles (a degraded disk, not a lossy one).
	FaultLatency
	// FaultCrash writes a prefix and kills the writing process; every
	// later write by that process fails with ErrCrashed.
	FaultCrash
	// FaultRenameBefore fails a SysRename before it applies: the
	// destination never appears and the temp file survives as an orphan
	// for the recovery pass to adopt or quarantine.
	FaultRenameBefore
	// FaultRenameAfter applies the rename, then reports an I/O error —
	// the ambiguous-outcome commit a recovery protocol must tolerate:
	// the caller believes the commit failed although it is durable.
	FaultRenameAfter
	// FaultRenameCrash kills the renaming process before the rename
	// applies, leaving the orphan temp file as the only durable
	// evidence of the attempted commit.
	FaultRenameCrash
)

// String names the fault kind.
func (k FaultKind) String() string {
	switch k {
	case FaultEIO:
		return "EIO"
	case FaultENOSPC:
		return "ENOSPC"
	case FaultTorn:
		return "torn"
	case FaultLatency:
		return "latency"
	case FaultCrash:
		return "crash"
	case FaultRenameBefore:
		return "rename-before"
	case FaultRenameAfter:
		return "rename-after"
	case FaultRenameCrash:
		return "rename-crash"
	default:
		return "none"
	}
}

// FaultPoint scripts an exact fault: the Nth prefix-matched write (0
// based) fails with Kind, regardless of the probabilistic schedule.
type FaultPoint struct {
	Write int
	Kind  FaultKind
}

// FaultPlan is a deterministic fault schedule.
type FaultPlan struct {
	// Seed drives the injector's private RNG.
	Seed int64
	// PathPrefix restricts injection to writes under this path ("" =
	// every write).
	PathPrefix string

	// Per-write probabilities, evaluated in this order; their sum
	// should stay <= 1.
	PEIO, PENOSPC, PTorn, PLatency, PCrash float64

	// LatencyCycles is the stall per FaultLatency (default: 4x the
	// synchronous-commit latency).
	LatencyCycles uint64
	// MaxFaults caps probabilistic injections (0 = unlimited); scripted
	// points always fire.
	MaxFaults int
	// Script forces exact faults at exact matched-write indices.
	Script []FaultPoint

	// Per-rename probabilities, evaluated like the write probabilities
	// but against SysRename calls. Renames draw from a second RNG stream
	// (derived from Seed), so arming rename faults never perturbs an
	// existing write-fault schedule.
	PRenameBefore, PRenameAfter, PRenameCrash float64
	// RenameScript forces exact rename faults at exact matched-rename
	// indices (0 based). Only the rename kinds are meaningful here.
	RenameScript []FaultPoint
}

// FaultStats counts injector activity.
type FaultStats struct {
	// Writes is every write seen; Matched is those under PathPrefix.
	Writes, Matched uint64
	// Renames is every rename seen; RenamesMatched is those whose
	// destination falls under PathPrefix.
	Renames, RenamesMatched uint64
	// Per-kind injection counts.
	EIO, ENoSpace, Torn, Latency, Crashes uint64
	// Per-rename-kind injection counts.
	RenameBefores, RenameAfters, RenameCrashes uint64
	// Injected is the total number of faults delivered.
	Injected uint64
}

// Destructive reports how many injected faults can lose or damage
// persisted data (everything except latency spikes). Every rename
// fault counts: even fail-after leaves the committer believing a
// durable commit failed, which forces deferral/duplication downstream.
func (s FaultStats) Destructive() uint64 {
	return s.EIO + s.ENoSpace + s.Torn + s.Crashes +
		s.RenameBefores + s.RenameAfters + s.RenameCrashes
}

// add merges two counter sets (used when several injectors are armed).
func (s FaultStats) add(o FaultStats) FaultStats {
	s.Writes += o.Writes
	s.Matched += o.Matched
	s.Renames += o.Renames
	s.RenamesMatched += o.RenamesMatched
	s.EIO += o.EIO
	s.ENoSpace += o.ENoSpace
	s.Torn += o.Torn
	s.Latency += o.Latency
	s.Crashes += o.Crashes
	s.RenameBefores += o.RenameBefores
	s.RenameAfters += o.RenameAfters
	s.RenameCrashes += o.RenameCrashes
	s.Injected += o.Injected
	return s
}

type faultInjector struct {
	plan FaultPlan
	rng  *rand.Rand
	// renameRng is a second stream so the rename schedule is
	// independent of how many writes happened to match.
	renameRng *rand.Rand
	stats     FaultStats
}

func newFaultInjector(plan FaultPlan) *faultInjector {
	if plan.LatencyCycles == 0 {
		plan.LatencyCycles = 4 * SyncLatencyCycles
	}
	return &faultInjector{
		plan:      plan,
		rng:       rand.New(rand.NewSource(plan.Seed)),
		renameRng: rand.New(rand.NewSource(plan.Seed ^ 0x7265_6e61_6d65)), // "rename"
	}
}

// SetFaultInjector installs (or, with a zero-probability empty plan,
// effectively clears) the write-path fault schedule, replacing any
// previously armed injectors.
func (k *Kernel) SetFaultInjector(plan FaultPlan) {
	k.injectors = []*faultInjector{newFaultInjector(plan)}
}

// SetFaultInjectors arms several fault schedules at once (a composed
// chaos run). Every injector sees every write/rename and advances its
// own deterministic schedule; when more than one proposes a fault for
// the same operation, the first armed plan wins and only the winner's
// counters record an injection.
func (k *Kernel) SetFaultInjectors(plans ...FaultPlan) {
	k.injectors = k.injectors[:0]
	for _, plan := range plans {
		k.injectors = append(k.injectors, newFaultInjector(plan))
	}
}

// FaultStats returns the injectors' counters summed (zero value if no
// injector is installed).
func (k *Kernel) FaultStats() FaultStats {
	var s FaultStats
	for _, fi := range k.injectors {
		s = s.add(fi.stats)
	}
	return s
}

// propose picks the fault this injector wants for one write, without
// recording an injection — the kernel notes only the winning injector,
// so losing proposals never inflate destructive-fault counts. The RNG
// is touched only for prefix-matched writes, keeping schedules
// deterministic per plan.
func (fi *faultInjector) propose(path string) FaultKind {
	fi.stats.Writes++
	if !strings.HasPrefix(path, fi.plan.PathPrefix) {
		return FaultNone
	}
	idx := int(fi.stats.Matched)
	fi.stats.Matched++
	for _, pt := range fi.plan.Script {
		if pt.Write == idx {
			return pt.Kind
		}
	}
	if fi.plan.MaxFaults > 0 && fi.stats.Injected >= uint64(fi.plan.MaxFaults) {
		return FaultNone
	}
	r := fi.rng.Float64()
	for _, c := range []struct {
		p float64
		k FaultKind
	}{
		{fi.plan.PEIO, FaultEIO},
		{fi.plan.PENOSPC, FaultENOSPC},
		{fi.plan.PTorn, FaultTorn},
		{fi.plan.PLatency, FaultLatency},
		{fi.plan.PCrash, FaultCrash},
	} {
		if r < c.p {
			return c.k
		}
		r -= c.p
	}
	return FaultNone
}

// proposeRename picks the fault this injector wants for one SysRename
// (matched against the rename's destination path). Same contract as
// propose: no injection is recorded until the kernel notes the winner.
func (fi *faultInjector) proposeRename(newPath string) FaultKind {
	fi.stats.Renames++
	if !strings.HasPrefix(newPath, fi.plan.PathPrefix) {
		return FaultNone
	}
	idx := int(fi.stats.RenamesMatched)
	fi.stats.RenamesMatched++
	for _, pt := range fi.plan.RenameScript {
		if pt.Write == idx {
			return pt.Kind
		}
	}
	if fi.plan.MaxFaults > 0 && fi.stats.Injected >= uint64(fi.plan.MaxFaults) {
		return FaultNone
	}
	r := fi.renameRng.Float64()
	for _, c := range []struct {
		p float64
		k FaultKind
	}{
		{fi.plan.PRenameBefore, FaultRenameBefore},
		{fi.plan.PRenameAfter, FaultRenameAfter},
		{fi.plan.PRenameCrash, FaultRenameCrash},
	} {
		if r < c.p {
			return c.k
		}
		r -= c.p
	}
	return FaultNone
}

func (fi *faultInjector) note(kind FaultKind) {
	switch kind {
	case FaultEIO:
		fi.stats.EIO++
	case FaultENOSPC:
		fi.stats.ENoSpace++
	case FaultTorn:
		fi.stats.Torn++
	case FaultLatency:
		fi.stats.Latency++
	case FaultCrash:
		fi.stats.Crashes++
	case FaultRenameBefore:
		fi.stats.RenameBefores++
	case FaultRenameAfter:
		fi.stats.RenameAfters++
	case FaultRenameCrash:
		fi.stats.RenameCrashes++
	default:
		return
	}
	fi.stats.Injected++
}

// cutShort picks how many bytes of an n-byte payload land on disk for
// a failing write: always a strict prefix, so a "failed" write can
// never silently equal a successful one (that would let a retry
// double-count).
func (fi *faultInjector) cutShort(n int) int {
	if n <= 0 {
		return 0
	}
	return fi.rng.Intn(n) // [0, n-1]
}

// cutTorn is cutShort but guarantees at least one byte lands when
// possible, producing a genuinely torn (not merely absent) record.
func (fi *faultInjector) cutTorn(n int) int {
	if n < 2 {
		return 0
	}
	return 1 + fi.rng.Intn(n-1) // [1, n-1]
}

// Read-path fault injection. The write injector above attacks data on
// its way to the disk; this one attacks it on the way back — the EIO a
// degraded platter delivers when the offline tools (vipreport, the
// integrity assembly) read profile artifacts back. The salvage readers'
// contract is the same as on the write side: an unreadable file must
// surface as loud degradation, never as silent absence that could let a
// sample misattribute through a missing epoch.

// ReadFaultPlan is a deterministic read-fault schedule for a Disk.
type ReadFaultPlan struct {
	// Seed drives the injector's private RNG.
	Seed int64
	// PathPrefix restricts injection to reads under this path ("" =
	// every read).
	PathPrefix string
	// PEIO is the per-read probability of an injected EIO.
	PEIO float64
	// MaxFaults caps injections (0 = unlimited).
	MaxFaults int
	// Script forces EIO at exact matched-read indices (0 based),
	// regardless of the probabilistic schedule.
	Script []int
}

// ReadFaultStats counts read-injector activity.
type ReadFaultStats struct {
	// Reads is every read seen; Matched is those under PathPrefix.
	Reads, Matched uint64
	// EIO is the number of injected read failures.
	EIO uint64
}

type readFaultInjector struct {
	plan  ReadFaultPlan
	rng   *rand.Rand
	stats ReadFaultStats
}

// decide reports whether this read fails. As on the write side, the RNG
// is consumed only for prefix-matched reads, so a fixed plan reproduces
// the identical fault schedule against the identical read sequence.
func (ri *readFaultInjector) decide(path string) bool {
	ri.stats.Reads++
	if !strings.HasPrefix(path, ri.plan.PathPrefix) {
		return false
	}
	idx := int(ri.stats.Matched)
	ri.stats.Matched++
	for _, w := range ri.plan.Script {
		if w == idx {
			ri.stats.EIO++
			return true
		}
	}
	if ri.plan.MaxFaults > 0 && ri.stats.EIO >= uint64(ri.plan.MaxFaults) {
		return false
	}
	if ri.rng.Float64() < ri.plan.PEIO {
		ri.stats.EIO++
		return true
	}
	return false
}

// Directory-damage fault injection. Disk.List is the third trusted
// surface after writes and reads: the offline chain reader discovers
// epoch map files by listing, so a listing that silently omits a file
// (a lost dirent) or resurrects a stale one (a phantom dirent after an
// unsynced rename) can hide committed epochs or re-expose quarantined
// temp files. The chain reader's contract under this injector is the
// same loud-degradation rule as everywhere else: a damaged listing may
// poison epochs and mark the run degraded, but must never let a sample
// misattribute through a hidden file.

// ListFaultPlan is a deterministic directory-damage schedule.
type ListFaultPlan struct {
	// Seed drives the injector's private RNG.
	Seed int64
	// PathPrefix restricts injection to listed entries under this path
	// ("" = every entry).
	PathPrefix string
	// PDrop is the per-entry probability that a listing omits the
	// entry (lost dirent).
	PDrop float64
	// PPhantom is the per-entry probability that a listing grows a
	// phantom sibling: the entry's path with ".tmp" appended, provided
	// no such file exists (a stale dirent for an already-renamed temp).
	PPhantom float64
	// MaxFaults caps injections (0 = unlimited).
	MaxFaults int
	// DropScript / PhantomScript force faults at exact matched-entry
	// indices (0 based), regardless of the probabilistic schedule.
	DropScript, PhantomScript []int
}

// ListFaultStats counts directory-damage injector activity.
type ListFaultStats struct {
	// Entries is every listed entry seen; Matched is those under
	// PathPrefix.
	Entries, Matched uint64
	// Dropped / Phantoms count injected faults.
	Dropped, Phantoms uint64
	// DroppedPaths / PhantomPaths record exactly which entries were
	// damaged, so invariant checks can tell consequential damage (a
	// hidden map file) from inconsequential (a hidden stats file that
	// is read by direct path anyway).
	DroppedPaths, PhantomPaths []string
}

type listFaultInjector struct {
	plan  ListFaultPlan
	rng   *rand.Rand
	stats ListFaultStats
}

// decide classifies one listed entry: dropped, phantom-sibling added,
// or passed through. The RNG is consumed only for prefix-matched
// entries, so a fixed plan reproduces the identical damage schedule
// against the identical listing sequence.
func (li *listFaultInjector) decide(path string) (drop, phantom bool) {
	li.stats.Entries++
	if !strings.HasPrefix(path, li.plan.PathPrefix) {
		return false, false
	}
	idx := int(li.stats.Matched)
	li.stats.Matched++
	for _, w := range li.plan.DropScript {
		if w == idx {
			li.stats.Dropped++
			li.stats.DroppedPaths = append(li.stats.DroppedPaths, path)
			return true, false
		}
	}
	for _, w := range li.plan.PhantomScript {
		if w == idx {
			li.stats.Phantoms++
			li.stats.PhantomPaths = append(li.stats.PhantomPaths, path)
			return false, true
		}
	}
	if li.plan.MaxFaults > 0 && li.stats.Dropped+li.stats.Phantoms >= uint64(li.plan.MaxFaults) {
		return false, false
	}
	r := li.rng.Float64()
	if r < li.plan.PDrop {
		li.stats.Dropped++
		li.stats.DroppedPaths = append(li.stats.DroppedPaths, path)
		return true, false
	}
	r -= li.plan.PDrop
	if r < li.plan.PPhantom {
		li.stats.Phantoms++
		li.stats.PhantomPaths = append(li.stats.PhantomPaths, path)
		return false, true
	}
	return false, false
}
