// Package kernel simulates the operating system under the profiled
// software stack: processes with address spaces, a round-robin
// scheduler with timeslices and context-switch costs, interrupt
// dispatch, a simulated disk, and a loadable-module interface that the
// OProfile driver plugs into (paper §3: "OProfile consists of a Linux
// kernel module, and a user level application").
//
// Kernel work is itself simulated execution at kernel-image symbol
// addresses, so kernel time shows up in profiles — full-system
// profiling needs the kernel to be profilable, not just modelled.
package kernel

import (
	"fmt"
	"math/rand"

	"viprof/internal/addr"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/image"
)

// Well-known layout constants.
const (
	// UserBase is where the first user image is loaded (the classic
	// 0x08048000 ELF text base).
	UserBase addr.Address = 0x0804_8000
	// LibBase is where shared libraries are mapped.
	LibBase addr.Address = 0x4000_0000
	// HeapBase is where anonymous heap mappings begin.
	HeapBase addr.Address = 0x6000_0000
	// StackTop is the top of the user stack region.
	StackTop addr.Address = 0xBFFF_F000
)

// DefaultTimeslice is the scheduler quantum in cycles (~10 ms at the
// simulated 3.4 MHz clock).
const DefaultTimeslice = 34_000

// HypervisorBase is where a hypervisor (the Xen layer of the paper's
// future work) maps its text: the top 64 MiB of the address space,
// as 32-bit Xen does. Kernel modules are allocated below it.
const HypervisorBase addr.Address = 0xFC00_0000

// StepResult tells the scheduler what a process did with its slice.
type StepResult int

// Step outcomes.
const (
	// StepYield: the slice expired or the process voluntarily yielded;
	// it remains runnable.
	StepYield StepResult = iota
	// StepBlocked: the process blocked (sleep or event wait); the
	// executor must have arranged a wakeup.
	StepBlocked
	// StepExit: the process terminated.
	StepExit
)

// Executor is the code a process runs. Step should execute micro-ops on
// m.Core until the slice budget expires (m.Core.Expired()), the process
// blocks, or it finishes.
type Executor interface {
	Step(m *Machine, p *Process) StepResult
}

// ExecFunc adapts a function to the Executor interface.
type ExecFunc func(m *Machine, p *Process) StepResult

// Step implements Executor.
func (f ExecFunc) Step(m *Machine, p *Process) StepResult { return f(m, p) }

// procState is the scheduler-visible process state.
type procState int

const (
	stateRunnable procState = iota
	stateBlocked
	stateDone
)

// Process is a simulated OS process.
type Process struct {
	PID  int
	Name string
	// Space is the process address space (kernel mapping included).
	Space *addr.Space
	// Daemon processes do not keep the machine alive: Run returns when
	// only daemons remain runnable.
	Daemon bool

	exec    Executor
	state   procState
	killed  bool   // crashed by fault injection; reaped at slice end
	wakeAt  uint64 // cycle at which a sleeping process becomes runnable
	cpuTime uint64 // cycles consumed (user+kernel on its behalf)
	cpu     int    // run-queue (core) this process is assigned to
	pinned  bool   // affinity-pinned: the stealer must never migrate it

	heapAlloc *addr.Allocator
	libAlloc  *addr.Allocator
	userAlloc *addr.Allocator
}

// CPUTime returns the cycles this process has consumed.
func (p *Process) CPUTime() uint64 { return p.cpuTime }

// CPU returns the core whose run queue currently holds this process.
func (p *Process) CPU() int { return p.cpu }

// Pinned reports whether the process is affinity-pinned to its core.
func (p *Process) Pinned() bool { return p.pinned }

// Done reports whether the process has exited.
func (p *Process) Done() bool { return p.state == stateDone }

// Killed reports whether the process was crashed by fault injection
// (as opposed to exiting cleanly).
func (p *Process) Killed() bool { return p.killed }

// Machine is the full simulated system: one or more cores plus the
// kernel. Core is the boot core (Cores[0]), kept for the single-core
// call sites that predate SMP; executors that run under the scheduler
// must use CPU(), which returns the core their process is currently
// scheduled on.
type Machine struct {
	Core  *cpu.Core
	Cores []*cpu.Core
	Kern  *Kernel
}

// CPU returns the core the kernel is currently scheduling on — the one
// an executor's micro-ops must retire through. On a single-core
// machine this is always Core.
func (m *Machine) CPU() *cpu.Core { return m.Kern.core }

// Kernel is the simulated operating system.
type Kernel struct {
	// core is the core the scheduler is currently driving: ExecKernel,
	// Sleep, tickers and NMI dispatch all charge it. The Run loop
	// repoints it each iteration (always the least-advanced clock).
	core    *cpu.Core
	cores   []*cpu.Core
	procs   []*Process
	nextPID int
	spawned int // processes created, for round-robin queue assignment
	// current is the process on the scheduling core; currents[i] is the
	// last process core i ran (its warm-cache owner).
	current  *Process
	currents []*Process

	vmlinux    *image.Image
	kernBase   addr.Address
	modAlloc   *addr.Allocator
	modules    map[string]*LoadedModule
	kernSyms   map[string]addr.VMA // symbol name -> absolute range
	kernSpace  *addr.Space         // the shared kernel mapping (one VMA per image)
	nmiHandler func(m *Machine, s cpu.Snapshot, ev hpc.Event)
	m          *Machine

	disk      *Disk
	rng       *rand.Rand
	tickers   []*ticker
	faults    uint64
	injectors []*faultInjector

	Timeslice uint64
	// SwitchCost is the context-switch overhead in cycles.
	SwitchCost uint32
	// ctxSwitches counts scheduler context switches.
	ctxSwitches uint64
	// migrations counts pull-based steals (a process moving between
	// per-core run queues).
	migrations uint64
}

// LoadedModule is a kernel module mapped into kernel space.
type LoadedModule struct {
	Image *image.Image
	Base  addr.Address
}

// ticker is a periodic kernel callback (see AddTicker).
type ticker struct {
	period, next uint64
	fn           func()
}

// NewMachine builds a single-core machine: core + kernel with the
// standard kernel image loaded at addr.KernelBase. The seed drives
// scheduling jitter and any other modelled nondeterminism (paper §4.3
// attributes run-to-run variance to "system noise").
func NewMachine(core *cpu.Core, seed int64) *Machine {
	return NewMachineN(seed, core)
}

// NewMachineN builds an SMP machine over the given cores. Core i is
// assigned CPU number i; processes are placed on run queues round-robin
// by creation order and may later migrate via pull-based stealing. For
// cross-core cache traffic to be modelled the cores should share an L2
// and coherency directory (cache.SharedHierarchies); independent
// hierarchies also work but see no coherency cost.
func NewMachineN(seed int64, cores ...*cpu.Core) *Machine {
	if len(cores) == 0 {
		panic("kernel: NewMachineN with no cores")
	}
	k := &Kernel{
		core:       cores[0],
		cores:      cores,
		currents:   make([]*Process, len(cores)),
		modules:    make(map[string]*LoadedModule),
		kernSyms:   make(map[string]addr.VMA),
		kernSpace:  addr.NewSpace(),
		disk:       NewDisk(),
		rng:        rand.New(rand.NewSource(seed)),
		Timeslice:  DefaultTimeslice,
		SwitchCost: 600,
		nextPID:    1,
	}
	m := &Machine{Core: cores[0], Cores: cores, Kern: k}
	k.m = m
	k.loadVmlinux()
	for i, c := range cores {
		c.SetID(i)
		c.SetNMIHandler(k.dispatchNMI)
	}
	// The periodic timer interrupt (HZ=100): a small slice of kernel
	// work every tick, as on the real machine, so timer_interrupt and
	// do_IRQ rows appear in profiles.
	k.AddTicker(k.Timeslice, func() {
		k.ExecKernel("timer_interrupt", 28, 1)
		k.ExecKernel("do_IRQ", 10, 1)
	})
	return m
}

// loadVmlinux builds the kernel text image with the symbols the
// simulation executes, and maps it at KernelBase.
func (k *Kernel) loadVmlinux() {
	b := image.NewBuilder("vmlinux")
	for _, s := range []struct {
		name string
		size uint64
	}{
		{"default_idle", 256},
		{"schedule", 2048},
		{"__switch_to", 512},
		{"do_nmi", 512},
		{"do_IRQ", 768},
		{"sys_write", 512},
		{"sys_rename", 512},
		{"vfs_write", 1024},
		{"generic_file_write", 2048},
		{"sys_read", 512},
		{"do_page_fault", 1024},
		{"handle_mm_fault", 2048},
		{"copy_to_user", 512},
		{"copy_from_user", 512},
		{"kmalloc", 768},
		{"kfree", 512},
		{"timer_interrupt", 512},
	} {
		b.Add(s.name, s.size)
	}
	im, err := b.Image()
	if err != nil {
		panic("kernel: vmlinux build: " + err.Error())
	}
	k.vmlinux = im
	k.kernBase = addr.KernelBase
	if err := k.kernSpace.Map(addr.VMA{
		Start: k.kernBase,
		End:   k.kernBase + addr.Address(im.Size),
		Image: im.Name,
		Prot:  addr.ProtRead | addr.ProtExec,
	}); err != nil {
		panic("kernel: map vmlinux: " + err.Error())
	}
	for _, s := range im.Symbols() {
		k.kernSyms[s.Name] = addr.VMA{
			Start: k.kernBase + s.Off,
			End:   k.kernBase + s.Off + addr.Address(s.Size),
			Image: im.Name,
		}
	}
	k.modAlloc = addr.NewAllocator(k.kernBase+addr.Address(im.Size)+0x1000, HypervisorBase)
}

// Vmlinux returns the kernel text image (for post-processing symbol
// resolution).
func (k *Kernel) Vmlinux() *image.Image { return k.vmlinux }

// Disk returns the simulated disk.
func (k *Kernel) Disk() *Disk { return k.disk }

// Rand returns the kernel's noise source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// ContextSwitches returns the number of scheduler context switches.
func (k *Kernel) ContextSwitches() uint64 { return k.ctxSwitches }

// Migrations returns how many times a process was stolen onto another
// core's run queue.
func (k *Kernel) Migrations() uint64 { return k.migrations }

// Cores returns the machine's cores in CPU order.
func (k *Kernel) Cores() []*cpu.Core { return k.cores }

// LoadModule maps a module image into kernel space and records it.
func (k *Kernel) LoadModule(im *image.Image) (*LoadedModule, error) {
	if _, dup := k.modules[im.Name]; dup {
		return nil, fmt.Errorf("kernel: module %s already loaded", im.Name)
	}
	base, err := k.modAlloc.Alloc(im.Size, 0x1000)
	if err != nil {
		return nil, fmt.Errorf("kernel: no space for module %s: %v", im.Name, err)
	}
	return k.mapModule(im, base)
}

// LoadModuleAt is LoadModule at a caller-chosen base; the hypervisor
// layer maps itself at HypervisorBase with it.
func (k *Kernel) LoadModuleAt(im *image.Image, base addr.Address) (*LoadedModule, error) {
	if _, dup := k.modules[im.Name]; dup {
		return nil, fmt.Errorf("kernel: module %s already loaded", im.Name)
	}
	if !base.IsKernel() {
		return nil, fmt.Errorf("kernel: module base %s not in kernel space", base)
	}
	return k.mapModule(im, base)
}

func (k *Kernel) mapModule(im *image.Image, base addr.Address) (*LoadedModule, error) {
	v := addr.VMA{Start: base, End: base + addr.Address(im.Size), Image: im.Name,
		Prot: addr.ProtRead | addr.ProtExec}
	if err := k.kernSpace.Map(v); err != nil {
		return nil, err
	}
	lm := &LoadedModule{Image: im, Base: base}
	k.modules[im.Name] = lm
	for _, s := range im.Symbols() {
		k.kernSyms[s.Name] = addr.VMA{
			Start: base + s.Off,
			End:   base + s.Off + addr.Address(s.Size),
			Image: im.Name,
		}
	}
	// Retrofit the new mapping into existing process spaces.
	for _, p := range k.procs {
		if err := p.Space.Map(v); err != nil {
			return nil, err
		}
	}
	return lm, nil
}

// Module returns a loaded module by name.
func (k *Kernel) Module(name string) (*LoadedModule, bool) {
	lm, ok := k.modules[name]
	return lm, ok
}

// Modules returns all loaded kernel modules.
func (k *Kernel) Modules() []*LoadedModule {
	out := make([]*LoadedModule, 0, len(k.modules))
	for _, lm := range k.modules {
		out = append(out, lm)
	}
	return out
}

// SetNMIHandler registers the profiler driver's NMI callback.
func (k *Kernel) SetNMIHandler(h func(m *Machine, s cpu.Snapshot, ev hpc.Event)) {
	k.nmiHandler = h
}

// dispatchNMI is the core's NMI entry: it charges the trap entry cost
// at do_nmi (in kernel mode, so the trap itself is profilable) and
// forwards to the registered handler.
func (k *Kernel) dispatchNMI(core *cpu.Core, s cpu.Snapshot, ev hpc.Event) {
	core.SetContext(cpu.Context{PID: s.Ctx.PID, Kernel: true})
	k.ExecKernel("do_nmi", 8, 1)
	if k.nmiHandler != nil {
		k.nmiHandler(k.m, s, ev)
	}
}
