package kernel

import (
	"bytes"
	"errors"
	"testing"

	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
)

func faultTestMachine(seed int64) *Machine {
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	return NewMachine(core, seed)
}

// The same (machine seed, plan) must reproduce the identical fault
// schedule: which writes fail, how, and how many bytes land.
func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() ([]error, []byte, FaultStats) {
		m := faultTestMachine(7)
		m.Kern.SetFaultInjector(FaultPlan{
			Seed:       42,
			PathPrefix: "var/",
			PEIO:       0.2, PENOSPC: 0.1, PTorn: 0.2, PLatency: 0.1,
		})
		var errs []error
		payload := []byte("0123456789abcdef0123456789abcdef")
		for i := 0; i < 40; i++ {
			errs = append(errs, m.Kern.SysWrite(nil, "var/data", payload))
			// Unmatched writes must not consume injector randomness.
			_ = m.Kern.SysWrite(nil, "tmp/other", payload)
		}
		data, _ := m.Kern.Disk().Read("var/data")
		return errs, append([]byte(nil), data...), m.Kern.FaultStats()
	}
	errs1, data1, st1 := run()
	errs2, data2, st2 := run()
	for i := range errs1 {
		if !errors.Is(errs1[i], errs2[i]) && errs1[i] != errs2[i] {
			t.Fatalf("write %d: error %v vs %v", i, errs1[i], errs2[i])
		}
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("on-disk bytes differ between identical runs")
	}
	if st1 != st2 {
		t.Fatalf("fault stats differ: %+v vs %+v", st1, st2)
	}
	if st1.Injected == 0 {
		t.Fatal("schedule injected nothing; probabilities too low for the test to mean anything")
	}
}

// A failing write must land a strict prefix of the payload — never the
// whole thing — so a retry after an error can never double-persist.
func TestFailedWritesLandStrictPrefix(t *testing.T) {
	payload := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
	for _, kind := range []FaultKind{FaultEIO, FaultENOSPC, FaultTorn} {
		m := faultTestMachine(3)
		m.Kern.SetFaultInjector(FaultPlan{
			Seed:   9,
			Script: []FaultPoint{{Write: 0, Kind: kind}},
		})
		err := m.Kern.SysWrite(nil, "f", payload)
		if err == nil {
			t.Fatalf("%v: write succeeded", kind)
		}
		data, rdErr := m.Kern.Disk().Read("f")
		if rdErr != nil {
			data = nil
		}
		if len(data) >= len(payload) {
			t.Fatalf("%v: %d of %d bytes persisted — not a strict prefix", kind, len(data), len(payload))
		}
		if !bytes.Equal(data, payload[:len(data)]) {
			t.Fatalf("%v: persisted bytes are not a prefix of the payload", kind)
		}
		if kind == FaultTorn && len(data) == 0 {
			t.Fatalf("torn write landed zero bytes; want a genuinely torn record")
		}
	}
}

// Scripted crash points kill the writing process: the faulting write
// lands a prefix, and every later write by that process fails with
// ErrCrashed touching nothing.
func TestCrashKillsWriter(t *testing.T) {
	m := faultTestMachine(5)
	m.Kern.SetFaultInjector(FaultPlan{
		Seed:   1,
		Script: []FaultPoint{{Write: 1, Kind: FaultCrash}},
	})
	p, err := m.Kern.NewProcess("writer", ExecFunc(func(m *Machine, p *Process) StepResult {
		return StepYield
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.SysWrite(p, "f", []byte("first")); err != nil {
		t.Fatalf("write 0: %v", err)
	}
	err = m.Kern.SysWrite(p, "f", []byte("second"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write: %v, want ErrCrashed", err)
	}
	if !p.Killed() {
		t.Fatal("process not marked killed after crash fault")
	}
	before, _ := m.Kern.Disk().Read("f")
	beforeLen := len(before)
	if err := m.Kern.SysWrite(p, "f", []byte("third")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v, want ErrCrashed", err)
	}
	if err := m.Kern.SysWriteSync(p, "f", []byte("fourth")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync write: %v, want ErrCrashed", err)
	}
	if err := m.Kern.SysRename(p, "f", "g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v, want ErrCrashed", err)
	}
	after, _ := m.Kern.Disk().Read("f")
	if len(after) != beforeLen {
		t.Fatalf("killed process mutated the disk: %d -> %d bytes", beforeLen, len(after))
	}
	// Wake must not resurrect it, and the scheduler must reap it.
	m.Kern.Wake(p)
	if err := m.Kern.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !p.Done() {
		t.Fatal("killed process never reaped by the scheduler")
	}
	if st := m.Kern.FaultStats(); st.Crashes != 1 || st.Destructive() != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// SysRename moves content atomically; renaming a missing file errors.
func TestSysRename(t *testing.T) {
	m := faultTestMachine(2)
	if err := m.Kern.SysWrite(nil, "a.tmp", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.SysRename(nil, "a.tmp", "a"); err != nil {
		t.Fatal(err)
	}
	if m.Kern.Disk().Exists("a.tmp") {
		t.Fatal("old path still exists after rename")
	}
	data, err := m.Kern.Disk().Read("a")
	if err != nil || string(data) != "payload" {
		t.Fatalf("renamed content: %q, %v", data, err)
	}
	if err := m.Kern.SysRename(nil, "missing", "x"); err == nil {
		t.Fatal("rename of missing file succeeded")
	}
}

// A latency fault completes the write but stalls the clock.
func TestLatencyFaultStallsNotLoses(t *testing.T) {
	m := faultTestMachine(11)
	stall := uint64(500_000)
	m.Kern.SetFaultInjector(FaultPlan{
		Seed:          1,
		LatencyCycles: stall,
		Script:        []FaultPoint{{Write: 0, Kind: FaultLatency}},
	})
	before := m.Core.Cycles()
	if err := m.Kern.SysWrite(nil, "f", []byte("slow but safe")); err != nil {
		t.Fatalf("latency write errored: %v", err)
	}
	if got := m.Core.Cycles() - before; got < stall {
		t.Fatalf("write advanced %d cycles, want >= %d", got, stall)
	}
	data, _ := m.Kern.Disk().Read("f")
	if string(data) != "slow but safe" {
		t.Fatalf("latency write lost data: %q", data)
	}
	st := m.Kern.FaultStats()
	if st.Latency != 1 || st.Destructive() != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// MaxFaults bounds probabilistic injection but not scripted points.
func TestMaxFaultsCap(t *testing.T) {
	m := faultTestMachine(13)
	m.Kern.SetFaultInjector(FaultPlan{
		Seed: 4, PEIO: 1.0, MaxFaults: 2,
		Script: []FaultPoint{{Write: 5, Kind: FaultTorn}},
	})
	failed := 0
	for i := 0; i < 8; i++ {
		if err := m.Kern.SysWrite(nil, "f", []byte("xxxxxxxxxxxxxxxx")); err != nil {
			failed++
		}
	}
	st := m.Kern.FaultStats()
	if st.EIO != 2 {
		t.Fatalf("EIO count %d, want capped at 2", st.EIO)
	}
	if st.Torn != 1 {
		t.Fatalf("scripted torn point did not fire past the cap: %+v", st)
	}
	if failed != 3 {
		t.Fatalf("%d failed writes, want 3 (2 capped EIO + 1 scripted)", failed)
	}
}

// Each rename fault mode: fail-before leaves the orphan temp and no
// destination; fail-after leaves a durable destination despite the
// error; crash-mid kills the renamer with the temp intact.
func TestRenameFaultModes(t *testing.T) {
	for _, tc := range []struct {
		kind               FaultKind
		wantTmp, wantFinal bool
		wantCrash          bool
	}{
		{FaultRenameBefore, true, false, false},
		{FaultRenameAfter, false, true, false},
		{FaultRenameCrash, true, false, true},
	} {
		m := faultTestMachine(17)
		m.Kern.SetFaultInjector(FaultPlan{
			Seed:         5,
			RenameScript: []FaultPoint{{Write: 0, Kind: tc.kind}},
		})
		p, err := m.Kern.NewProcess("renamer", ExecFunc(func(m *Machine, p *Process) StepResult {
			return StepYield
		}))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Kern.SysWrite(p, "d/a.tmp", []byte("payload")); err != nil {
			t.Fatalf("%v: setup write: %v", tc.kind, err)
		}
		err = m.Kern.SysRename(p, "d/a.tmp", "d/a")
		if err == nil {
			t.Fatalf("%v: rename succeeded", tc.kind)
		}
		if tc.wantCrash != errors.Is(err, ErrCrashed) {
			t.Fatalf("%v: rename error %v, crash want %v", tc.kind, err, tc.wantCrash)
		}
		if tc.wantCrash != p.Killed() {
			t.Fatalf("%v: killed=%v, want %v", tc.kind, p.Killed(), tc.wantCrash)
		}
		disk := m.Kern.Disk()
		if got := disk.Exists("d/a.tmp"); got != tc.wantTmp {
			t.Errorf("%v: temp exists=%v, want %v", tc.kind, got, tc.wantTmp)
		}
		if got := disk.Exists("d/a"); got != tc.wantFinal {
			t.Errorf("%v: final exists=%v, want %v", tc.kind, got, tc.wantFinal)
		}
		if tc.wantFinal {
			if data, err := disk.Read("d/a"); err != nil || string(data) != "payload" {
				t.Errorf("%v: final content %q, %v", tc.kind, data, err)
			}
		}
		st := m.Kern.FaultStats()
		if st.Destructive() != 1 || st.Injected != 1 {
			t.Errorf("%v: stats %+v, want exactly one destructive injection", tc.kind, st)
		}
	}
}

// Renaming onto an existing destination silently replaces it — POSIX
// rename(2) semantics, which the recovery pass's adoption step relies
// on being idempotent.
func TestRenameToExistingPath(t *testing.T) {
	m := faultTestMachine(19)
	if err := m.Kern.SysWrite(nil, "d/a", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.SysWrite(nil, "d/a.tmp", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.SysRename(nil, "d/a.tmp", "d/a"); err != nil {
		t.Fatalf("rename onto existing path: %v", err)
	}
	if m.Kern.Disk().Exists("d/a.tmp") {
		t.Error("source still exists after replacing rename")
	}
	data, err := m.Kern.Disk().Read("d/a")
	if err != nil || string(data) != "new" {
		t.Fatalf("destination content %q, %v; want the replacement", data, err)
	}
}

// The rename schedule draws from its own RNG stream: arming rename
// probabilities must not change which writes fail.
func TestRenameStreamIndependentOfWrites(t *testing.T) {
	run := func(withRenames bool) ([]error, FaultStats) {
		m := faultTestMachine(23)
		plan := FaultPlan{Seed: 31, PathPrefix: "var/", PEIO: 0.3}
		if withRenames {
			plan.PRenameBefore = 0.4
			plan.PRenameAfter = 0.3
		}
		m.Kern.SetFaultInjector(plan)
		var errs []error
		for i := 0; i < 30; i++ {
			errs = append(errs, m.Kern.SysWrite(nil, "var/data", []byte("xxxxxxxxxxxxxxxx")))
			_ = m.Kern.SysWrite(nil, "var/t.tmp", []byte("y"))
			_ = m.Kern.SysRename(nil, "var/t.tmp", "var/t")
		}
		return errs, m.Kern.FaultStats()
	}
	plain, stPlain := run(false)
	armed, stArmed := run(true)
	for i := range plain {
		if (plain[i] == nil) != (armed[i] == nil) {
			t.Fatalf("write %d: error %v without renames vs %v with — rename faults perturbed the write schedule",
				i, plain[i], armed[i])
		}
	}
	if stPlain.EIO != stArmed.EIO {
		t.Fatalf("EIO count changed when rename faults were armed: %d vs %d", stPlain.EIO, stArmed.EIO)
	}
	if stArmed.RenameBefores+stArmed.RenameAfters == 0 {
		t.Fatal("armed rename schedule injected nothing; probabilities too low to test independence")
	}
}

// Composed injectors: every armed plan advances its own schedule, but
// only the winning proposal records an injection — two always-fail
// plans on the same path must deliver exactly one fault per write.
func TestComposedInjectorsCountWinnerOnly(t *testing.T) {
	m := faultTestMachine(29)
	m.Kern.SetFaultInjectors(
		FaultPlan{Seed: 1, PathPrefix: "var/", PEIO: 1.0},
		FaultPlan{Seed: 2, PathPrefix: "var/", PTorn: 1.0},
	)
	const writes = 10
	for i := 0; i < writes; i++ {
		if err := m.Kern.SysWrite(nil, "var/data", []byte("xxxxxxxxxxxxxxxx")); err == nil {
			t.Fatalf("write %d succeeded under an always-fail schedule", i)
		}
	}
	st := m.Kern.FaultStats()
	if st.Injected != writes {
		t.Fatalf("injected %d faults over %d writes; losing proposals were counted", st.Injected, writes)
	}
	if st.EIO != writes || st.Torn != 0 {
		t.Fatalf("stats %+v: first armed plan must win every contested write", st)
	}
	if st.Matched != 2*writes {
		t.Fatalf("matched %d, want %d: every injector must see (and advance on) every write", st.Matched, 2*writes)
	}
}

// Directory damage: dropped entries vanish from the listing only,
// phantom entries appear as ".tmp" siblings only when no such file
// exists, and direct-path reads are never affected.
func TestListFaultDropAndPhantom(t *testing.T) {
	m := faultTestMachine(37)
	disk := m.Kern.Disk()
	for _, f := range []string{"d/map.0", "d/map.1", "d/map.2"} {
		if err := m.Kern.SysWrite(nil, f, []byte(f)); err != nil {
			t.Fatal(err)
		}
	}
	disk.SetListFaultInjector(ListFaultPlan{
		Seed:          3,
		PathPrefix:    "d/",
		DropScript:    []int{1},
		PhantomScript: []int{0},
	})
	listed := make(map[string]bool)
	for _, name := range disk.List() {
		listed[name] = true
	}
	if listed["d/map.1"] {
		t.Error("dropped dirent still listed")
	}
	if !listed["d/map.0"] || !listed["d/map.2"] {
		t.Error("undamaged entries missing from the listing")
	}
	if !listed["d/map.0.tmp"] {
		t.Error("phantom dirent not listed")
	}
	if disk.Exists("d/map.0.tmp") {
		t.Error("phantom dirent materialized as a real file")
	}
	if data, err := disk.Read("d/map.1"); err != nil || string(data) != "d/map.1" {
		t.Errorf("direct read of dropped entry: %q, %v — listing damage must not affect reads", data, err)
	}
	st := disk.ListFaultStats()
	if st.Dropped != 1 || st.Phantoms != 1 {
		t.Fatalf("list fault stats %+v", st)
	}
	if len(st.DroppedPaths) != 1 || st.DroppedPaths[0] != "d/map.1" {
		t.Errorf("dropped paths %v", st.DroppedPaths)
	}
	if len(st.PhantomPaths) != 1 || st.PhantomPaths[0] != "d/map.0" {
		t.Errorf("phantom paths %v", st.PhantomPaths)
	}
	// A second listing with the script exhausted is undamaged.
	disk.ClearListFaultInjector()
	n := 0
	for _, name := range disk.List() {
		if listed := name; listed != "" {
			n++
		}
	}
	if n != 3 {
		t.Fatalf("listing after clearing the injector has %d entries, want 3", n)
	}
}

// A phantom sibling is suppressed when the ".tmp" file genuinely
// exists — the listing must not duplicate a real entry.
func TestListFaultPhantomSkipsRealFile(t *testing.T) {
	m := faultTestMachine(41)
	disk := m.Kern.Disk()
	if err := m.Kern.SysWrite(nil, "d/map.0", []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.SysWrite(nil, "d/map.0.tmp", []byte("b")); err != nil {
		t.Fatal(err)
	}
	disk.SetListFaultInjector(ListFaultPlan{Seed: 3, PathPrefix: "d/", PhantomScript: []int{0}})
	seen := 0
	for _, name := range disk.List() {
		if name == "d/map.0.tmp" {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("real .tmp file listed %d times, want exactly once", seen)
	}
}
