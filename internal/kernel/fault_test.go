package kernel

import (
	"bytes"
	"errors"
	"testing"

	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
)

func faultTestMachine(seed int64) *Machine {
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	return NewMachine(core, seed)
}

// The same (machine seed, plan) must reproduce the identical fault
// schedule: which writes fail, how, and how many bytes land.
func TestFaultScheduleDeterministic(t *testing.T) {
	run := func() ([]error, []byte, FaultStats) {
		m := faultTestMachine(7)
		m.Kern.SetFaultInjector(FaultPlan{
			Seed:       42,
			PathPrefix: "var/",
			PEIO:       0.2, PENOSPC: 0.1, PTorn: 0.2, PLatency: 0.1,
		})
		var errs []error
		payload := []byte("0123456789abcdef0123456789abcdef")
		for i := 0; i < 40; i++ {
			errs = append(errs, m.Kern.SysWrite(nil, "var/data", payload))
			// Unmatched writes must not consume injector randomness.
			_ = m.Kern.SysWrite(nil, "tmp/other", payload)
		}
		data, _ := m.Kern.Disk().Read("var/data")
		return errs, append([]byte(nil), data...), m.Kern.FaultStats()
	}
	errs1, data1, st1 := run()
	errs2, data2, st2 := run()
	for i := range errs1 {
		if !errors.Is(errs1[i], errs2[i]) && errs1[i] != errs2[i] {
			t.Fatalf("write %d: error %v vs %v", i, errs1[i], errs2[i])
		}
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("on-disk bytes differ between identical runs")
	}
	if st1 != st2 {
		t.Fatalf("fault stats differ: %+v vs %+v", st1, st2)
	}
	if st1.Injected == 0 {
		t.Fatal("schedule injected nothing; probabilities too low for the test to mean anything")
	}
}

// A failing write must land a strict prefix of the payload — never the
// whole thing — so a retry after an error can never double-persist.
func TestFailedWritesLandStrictPrefix(t *testing.T) {
	payload := []byte("ABCDEFGHIJKLMNOPQRSTUVWXYZ")
	for _, kind := range []FaultKind{FaultEIO, FaultENOSPC, FaultTorn} {
		m := faultTestMachine(3)
		m.Kern.SetFaultInjector(FaultPlan{
			Seed:   9,
			Script: []FaultPoint{{Write: 0, Kind: kind}},
		})
		err := m.Kern.SysWrite(nil, "f", payload)
		if err == nil {
			t.Fatalf("%v: write succeeded", kind)
		}
		data, rdErr := m.Kern.Disk().Read("f")
		if rdErr != nil {
			data = nil
		}
		if len(data) >= len(payload) {
			t.Fatalf("%v: %d of %d bytes persisted — not a strict prefix", kind, len(data), len(payload))
		}
		if !bytes.Equal(data, payload[:len(data)]) {
			t.Fatalf("%v: persisted bytes are not a prefix of the payload", kind)
		}
		if kind == FaultTorn && len(data) == 0 {
			t.Fatalf("torn write landed zero bytes; want a genuinely torn record")
		}
	}
}

// Scripted crash points kill the writing process: the faulting write
// lands a prefix, and every later write by that process fails with
// ErrCrashed touching nothing.
func TestCrashKillsWriter(t *testing.T) {
	m := faultTestMachine(5)
	m.Kern.SetFaultInjector(FaultPlan{
		Seed:   1,
		Script: []FaultPoint{{Write: 1, Kind: FaultCrash}},
	})
	p, err := m.Kern.NewProcess("writer", ExecFunc(func(m *Machine, p *Process) StepResult {
		return StepYield
	}))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.SysWrite(p, "f", []byte("first")); err != nil {
		t.Fatalf("write 0: %v", err)
	}
	err = m.Kern.SysWrite(p, "f", []byte("second"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash write: %v, want ErrCrashed", err)
	}
	if !p.Killed() {
		t.Fatal("process not marked killed after crash fault")
	}
	before, _ := m.Kern.Disk().Read("f")
	beforeLen := len(before)
	if err := m.Kern.SysWrite(p, "f", []byte("third")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write: %v, want ErrCrashed", err)
	}
	if err := m.Kern.SysWriteSync(p, "f", []byte("fourth")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync write: %v, want ErrCrashed", err)
	}
	if err := m.Kern.SysRename(p, "f", "g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash rename: %v, want ErrCrashed", err)
	}
	after, _ := m.Kern.Disk().Read("f")
	if len(after) != beforeLen {
		t.Fatalf("killed process mutated the disk: %d -> %d bytes", beforeLen, len(after))
	}
	// Wake must not resurrect it, and the scheduler must reap it.
	m.Kern.Wake(p)
	if err := m.Kern.Run(10_000_000); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !p.Done() {
		t.Fatal("killed process never reaped by the scheduler")
	}
	if st := m.Kern.FaultStats(); st.Crashes != 1 || st.Destructive() != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// SysRename moves content atomically; renaming a missing file errors.
func TestSysRename(t *testing.T) {
	m := faultTestMachine(2)
	if err := m.Kern.SysWrite(nil, "a.tmp", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.SysRename(nil, "a.tmp", "a"); err != nil {
		t.Fatal(err)
	}
	if m.Kern.Disk().Exists("a.tmp") {
		t.Fatal("old path still exists after rename")
	}
	data, err := m.Kern.Disk().Read("a")
	if err != nil || string(data) != "payload" {
		t.Fatalf("renamed content: %q, %v", data, err)
	}
	if err := m.Kern.SysRename(nil, "missing", "x"); err == nil {
		t.Fatal("rename of missing file succeeded")
	}
}

// A latency fault completes the write but stalls the clock.
func TestLatencyFaultStallsNotLoses(t *testing.T) {
	m := faultTestMachine(11)
	stall := uint64(500_000)
	m.Kern.SetFaultInjector(FaultPlan{
		Seed:          1,
		LatencyCycles: stall,
		Script:        []FaultPoint{{Write: 0, Kind: FaultLatency}},
	})
	before := m.Core.Cycles()
	if err := m.Kern.SysWrite(nil, "f", []byte("slow but safe")); err != nil {
		t.Fatalf("latency write errored: %v", err)
	}
	if got := m.Core.Cycles() - before; got < stall {
		t.Fatalf("write advanced %d cycles, want >= %d", got, stall)
	}
	data, _ := m.Kern.Disk().Read("f")
	if string(data) != "slow but safe" {
		t.Fatalf("latency write lost data: %q", data)
	}
	st := m.Kern.FaultStats()
	if st.Latency != 1 || st.Destructive() != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// MaxFaults bounds probabilistic injection but not scripted points.
func TestMaxFaultsCap(t *testing.T) {
	m := faultTestMachine(13)
	m.Kern.SetFaultInjector(FaultPlan{
		Seed: 4, PEIO: 1.0, MaxFaults: 2,
		Script: []FaultPoint{{Write: 5, Kind: FaultTorn}},
	})
	failed := 0
	for i := 0; i < 8; i++ {
		if err := m.Kern.SysWrite(nil, "f", []byte("xxxxxxxxxxxxxxxx")); err != nil {
			failed++
		}
	}
	st := m.Kern.FaultStats()
	if st.EIO != 2 {
		t.Fatalf("EIO count %d, want capped at 2", st.EIO)
	}
	if st.Torn != 1 {
		t.Fatalf("scripted torn point did not fire past the cap: %+v", st)
	}
	if failed != 3 {
		t.Fatalf("%d failed writes, want 3 (2 capped EIO + 1 scripted)", failed)
	}
}
