package kernel

import (
	"strings"
	"testing"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/image"
)

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	return NewMachine(core, 1)
}

// burnExec returns an executor that burns roughly totalOps micro-ops at
// the given user address, then exits.
func burnExec(pc addr.Address, totalOps int) Executor {
	done := 0
	return ExecFunc(func(m *Machine, p *Process) StepResult {
		for done < totalOps && !m.Core.Expired() {
			m.Core.Exec(cpu.Op{PC: pc, Cost: 1})
			done++
		}
		if done >= totalOps {
			return StepExit
		}
		return StepYield
	})
}

func TestKernelMapsVmlinux(t *testing.T) {
	m := newTestMachine(t)
	k := m.Kern
	if k.Vmlinux().NumSymbols() == 0 {
		t.Fatal("vmlinux has no symbols")
	}
	v, ok := k.KernelSymbol("sys_write")
	if !ok || !v.Start.IsKernel() {
		t.Fatalf("sys_write = %+v, %v", v, ok)
	}
}

func TestNewProcessHasKernelMapping(t *testing.T) {
	m := newTestMachine(t)
	p, err := m.Kern.NewProcess("app", burnExec(UserBase, 10))
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != 1 {
		t.Errorf("first PID = %d", p.PID)
	}
	v, ok := p.Space.Lookup(addr.KernelBase)
	if !ok || v.Image != "vmlinux" {
		t.Errorf("kernel not mapped in process space: %+v %v", v, ok)
	}
}

func TestLoadImageAndMapAnon(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Kern.NewProcess("app", burnExec(UserBase, 1))

	b := image.NewBuilder("app.bin")
	b.Add("main", 400)
	im, _ := b.Image()
	base, err := m.Kern.LoadImage(p, im, false)
	if err != nil {
		t.Fatal(err)
	}
	if base != UserBase {
		t.Errorf("app loaded at %s, want %s", base, UserBase)
	}
	lb := image.NewBuilder("libc-2.3.2.so")
	lb.Add("memset", 200)
	lim, _ := lb.Image()
	lbase, err := m.Kern.LoadImage(p, lim, true)
	if err != nil {
		t.Fatal(err)
	}
	if lbase < LibBase || lbase >= HeapBase {
		t.Errorf("library loaded at %s, outside library region", lbase)
	}
	hbase, err := m.Kern.MapAnon(p, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := p.Space.Lookup(hbase + 100)
	if !ok || !v.Anonymous() || v.Prot&addr.ProtExec == 0 {
		t.Errorf("anon exec mapping wrong: %+v %v", v, ok)
	}
}

func TestRunSingleProcess(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Kern.NewProcess("app", burnExec(UserBase, 100_000))
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Error("process did not finish")
	}
	if p.CPUTime() < 100_000 {
		t.Errorf("cpu time %d < work done", p.CPUTime())
	}
	if m.Core.Cycles() < 100_000 {
		t.Errorf("clock %d did not advance past the work", m.Core.Cycles())
	}
}

func TestRoundRobinShares(t *testing.T) {
	m := newTestMachine(t)
	a, _ := m.Kern.NewProcess("a", burnExec(UserBase, 200_000))
	b, _ := m.Kern.NewProcess("b", burnExec(UserBase, 200_000))
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	if !a.Done() || !b.Done() {
		t.Fatal("processes did not finish")
	}
	ratio := float64(a.CPUTime()) / float64(b.CPUTime())
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("unfair scheduling: a=%d b=%d", a.CPUTime(), b.CPUTime())
	}
	if m.Kern.ContextSwitches() < 4 {
		t.Errorf("only %d context switches for two competing processes", m.Kern.ContextSwitches())
	}
}

func TestDaemonDoesNotKeepMachineAlive(t *testing.T) {
	m := newTestMachine(t)
	work, _ := m.Kern.NewProcess("work", burnExec(UserBase, 50_000))
	d, _ := m.Kern.NewProcess("daemon", ExecFunc(func(m *Machine, p *Process) StepResult {
		m.Kern.ExecKernel("kmalloc", 10, 1)
		m.Kern.Sleep(p, 10_000)
		return StepBlocked
	}))
	d.Daemon = true
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	if !work.Done() {
		t.Error("worker did not finish")
	}
	if d.Done() {
		t.Error("daemon should not have exited")
	}
}

func TestSleepAndWake(t *testing.T) {
	m := newTestMachine(t)
	var wokeAt uint64
	slept := false
	sleeper, _ := m.Kern.NewProcess("sleeper", ExecFunc(func(mm *Machine, p *Process) StepResult {
		if slept {
			wokeAt = mm.Core.Cycles()
			return StepExit
		}
		slept = true
		mm.Kern.Sleep(p, 500_000)
		return StepBlocked
	}))
	_ = sleeper
	if err := m.Kern.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if wokeAt < 500_000 {
		t.Errorf("woke at %d, before sleep expired", wokeAt)
	}
}

func TestBlockedDeadlockDetected(t *testing.T) {
	m := newTestMachine(t)
	m.Kern.NewProcess("stuck", ExecFunc(func(mm *Machine, p *Process) StepResult {
		mm.Kern.Block(p)
		return StepBlocked
	}))
	if err := m.Kern.Run(0); err == nil {
		t.Error("deadlock not detected")
	} else if !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestWakeUnblocks(t *testing.T) {
	m := newTestMachine(t)
	var worker *Process
	worker, _ = m.Kern.NewProcess("worker", ExecFunc(func(mm *Machine, p *Process) StepResult {
		mm.Kern.Block(p)
		return StepBlocked
	}))
	m.Kern.NewProcess("waker", ExecFunc(func(mm *Machine, p *Process) StepResult {
		mm.Kern.Wake(worker)
		// Replace worker behaviour on next run: it will block again, so
		// just exit both ways — worker exits once woken.
		worker.exec = ExecFunc(func(*Machine, *Process) StepResult { return StepExit })
		return StepExit
	}))
	if err := m.Kern.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	if !worker.Done() {
		t.Error("woken worker did not run to completion")
	}
}

func TestCycleLimit(t *testing.T) {
	m := newTestMachine(t)
	m.Kern.NewProcess("forever", ExecFunc(func(mm *Machine, p *Process) StepResult {
		for !mm.Core.Expired() {
			mm.Core.Exec(cpu.Op{PC: UserBase, Cost: 1})
		}
		return StepYield
	}))
	if err := m.Kern.Run(200_000); err == nil {
		t.Error("cycle limit not enforced")
	}
}

func TestExecKernelRunsInKernelMode(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 10)
	core := cpu.New(bank, nil)
	m := NewMachine(core, 1)
	var kernelSamples, userSamples int
	m.Kern.SetNMIHandler(func(mm *Machine, s cpu.Snapshot, ev hpc.Event) {
		if s.Ctx.Kernel {
			kernelSamples++
		} else {
			userSamples++
		}
		if !s.Ctx.Kernel && s.PC.IsKernel() {
			t.Errorf("user-mode sample at kernel address %s", s.PC)
		}
	})
	core.SetContext(cpu.Context{PID: 5})
	m.Kern.ExecKernel("vfs_write", 100, 1)
	if kernelSamples == 0 {
		t.Error("no kernel-mode samples from kernel execution")
	}
	if got := core.Context(); got.Kernel || got.PID != 5 {
		t.Errorf("context not restored: %+v", got)
	}
}

func TestExecKernelUnknownSymbolPanics(t *testing.T) {
	m := newTestMachine(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown symbol")
		}
	}()
	m.Kern.ExecKernel("nonexistent_symbol", 1, 1)
}

func TestLoadModule(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Kern.NewProcess("pre", burnExec(UserBase, 1))

	b := image.NewBuilder("oprofile.ko")
	b.Add("op_nmi_handler", 300)
	b.Add("op_do_sample", 500)
	im, _ := b.Image()
	lm, err := m.Kern.LoadModule(im)
	if err != nil {
		t.Fatal(err)
	}
	if !lm.Base.IsKernel() {
		t.Errorf("module at %s, not in kernel space", lm.Base)
	}
	if _, err := m.Kern.LoadModule(im); err == nil {
		t.Error("duplicate module load accepted")
	}
	// Module symbols resolvable and mapped into existing processes.
	if _, ok := m.Kern.KernelSymbol("op_do_sample"); !ok {
		t.Error("module symbol not registered")
	}
	if v, ok := p.Space.Lookup(lm.Base); !ok || v.Image != "oprofile.ko" {
		t.Errorf("module not visible in pre-existing process: %+v %v", v, ok)
	}
	// And in new processes.
	q, _ := m.Kern.NewProcess("post", burnExec(UserBase, 1))
	if _, ok := q.Space.Lookup(lm.Base); !ok {
		t.Error("module not visible in new process")
	}
}

func TestDisk(t *testing.T) {
	d := NewDisk()
	if d.Exists("x") {
		t.Error("phantom file")
	}
	d.Append("a/b", []byte("hello "))
	d.Append("a/b", []byte("world"))
	got, err := d.Read("a/b")
	if err != nil || string(got) != "hello world" {
		t.Errorf("Read = %q, %v", got, err)
	}
	if _, err := d.Read("missing"); err == nil {
		t.Error("read of missing file succeeded")
	}
	d.Append("a/a", nil)
	if list := d.List(); len(list) != 2 || list[0] != "a/a" {
		t.Errorf("List = %v", list)
	}
	if d.BytesWritten != 11 || d.Writes != 3 {
		t.Errorf("stats = %d bytes, %d writes", d.BytesWritten, d.Writes)
	}
	d.Remove("a/b")
	if d.Exists("a/b") {
		t.Error("file survived Remove")
	}
}

func TestSysWriteChargesKernelTime(t *testing.T) {
	m := newTestMachine(t)
	p, _ := m.Kern.NewProcess("writer", burnExec(UserBase, 1))
	before := m.Core.Cycles()
	small := make([]byte, 16)
	big := make([]byte, 16*1024)
	m.Kern.SysWrite(p, "f1", small)
	mid := m.Core.Cycles()
	m.Kern.SysWrite(p, "f2", big)
	after := m.Core.Cycles()
	if mid-before == 0 {
		t.Error("small write cost nothing")
	}
	// The 1000x payload must cost several times more; cold-cache and
	// TLB effects keep the ratio below the pure op-count ratio.
	if after-mid <= (mid-before)*5 {
		t.Errorf("big write (%d cycles) not proportionally costlier than small (%d)",
			after-mid, mid-before)
	}
	if !m.Kern.Disk().Exists("f1") || !m.Kern.Disk().Exists("f2") {
		t.Error("files not written")
	}
}

func TestNMIDispatchChargesTrapCost(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 1000)
	core := cpu.New(bank, nil)
	m := NewMachine(core, 1)
	handled := 0
	m.Kern.SetNMIHandler(func(mm *Machine, s cpu.Snapshot, ev hpc.Event) { handled++ })
	p, _ := m.Kern.NewProcess("app", burnExec(UserBase, 10_000))
	_ = p
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	if handled == 0 {
		t.Error("no NMIs dispatched")
	}
}

func TestTickers(t *testing.T) {
	m := newTestMachine(t)
	var fired int
	m.Kern.AddTicker(10_000, func() { fired++ })
	m.Kern.AddTicker(0, func() { t.Error("zero-period ticker must be rejected") })
	m.Kern.NewProcess("app", burnExec(UserBase, 100_000))
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	// ~100K cycles of work plus overheads: the 10K ticker fires ~10+
	// times (checked at scheduling boundaries, so the count is
	// approximate but must be in the right decade).
	if fired < 5 || fired > 40 {
		t.Errorf("ticker fired %d times over ~100K cycles", fired)
	}
}

func TestTimerInterruptRowsAppear(t *testing.T) {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 7_000)
	core := cpu.New(bank, cache.DefaultHierarchy())
	m := NewMachine(core, 1)
	timerSamples := 0
	m.Kern.SetNMIHandler(func(mm *Machine, s cpu.Snapshot, ev hpc.Event) {
		if v, ok := mm.Kern.KernelLookup(s.PC); ok && v.Image == "vmlinux" {
			if sym, found := mm.Kern.Vmlinux().Resolve(v.ImageOffset(s.PC)); found {
				if sym.Name == "timer_interrupt" || sym.Name == "do_IRQ" {
					timerSamples++
				}
			}
		}
	})
	m.Kern.NewProcess("app", burnExec(UserBase, 3_000_000))
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	if timerSamples == 0 {
		t.Error("timer interrupt work never sampled")
	}
}
