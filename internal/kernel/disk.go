package kernel

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"viprof/internal/addr"
)

// Disk is the simulated filesystem. Profile sample files and VM-agent
// code maps are written here during a run and read back by the offline
// post-processing tools (which, being offline, read for free).
type Disk struct {
	files map[string]*bytes.Buffer
	// BytesWritten counts all bytes written through the syscall path.
	BytesWritten uint64
	// Writes counts write syscalls.
	Writes uint64
	// readInjector, when set, delivers seeded EIO on Read — the offline
	// tools' half of the fault model (see fault.go).
	readInjector *readFaultInjector
	// listInjector, when set, damages directory listings — dropped and
	// phantom entries the chain reader must degrade loudly on.
	listInjector *listFaultInjector
}

// NewDisk returns an empty disk.
func NewDisk() *Disk {
	return &Disk{files: make(map[string]*bytes.Buffer)}
}

// Append adds data to the named file, creating it if needed. This is
// the raw operation; use Kernel.SysWrite to charge simulated time.
func (d *Disk) Append(path string, data []byte) {
	f, ok := d.files[path]
	if !ok {
		f = &bytes.Buffer{}
		d.files[path] = f
	}
	f.Write(data)
	d.BytesWritten += uint64(len(data))
	d.Writes++
}

// Size reports the named file's length in bytes. It is a metadata
// operation (a stat, not a data read): the read-fault injector does not
// apply, so retention policies can size files they will never open.
func (d *Disk) Size(path string) (int, bool) {
	f, ok := d.files[path]
	if !ok {
		return 0, false
	}
	return f.Len(), true
}

// Read returns the contents of a file. An installed read-fault injector
// may deliver ErrIO for a file that exists — the degraded-platter case
// the salvage readers must surface loudly rather than treat as absence.
func (d *Disk) Read(path string) ([]byte, error) {
	f, ok := d.files[path]
	if !ok {
		return nil, fmt.Errorf("disk: no such file %q", path)
	}
	if d.readInjector != nil && d.readInjector.decide(path) {
		return nil, ErrIO
	}
	return f.Bytes(), nil
}

// SetReadFaultInjector installs the read-path fault schedule.
func (d *Disk) SetReadFaultInjector(plan ReadFaultPlan) {
	d.readInjector = &readFaultInjector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// ClearReadFaultInjector removes the read-path fault schedule, so later
// reads (test re-reads, repeated report builds) see the true disk.
func (d *Disk) ClearReadFaultInjector() { d.readInjector = nil }

// ReadFaultStats returns the read injector's counters (zero value if no
// injector is installed).
func (d *Disk) ReadFaultStats() ReadFaultStats {
	if d.readInjector == nil {
		return ReadFaultStats{}
	}
	return d.readInjector.stats
}

// Exists reports whether the file exists.
func (d *Disk) Exists(path string) bool {
	_, ok := d.files[path]
	return ok
}

// Remove deletes a file if present.
func (d *Disk) Remove(path string) { delete(d.files, path) }

// Rename atomically moves a file. It is the commit step of the
// temp-then-rename protocol the VM agent uses for epoch code maps: a
// final map path either holds a complete write or does not exist.
func (d *Disk) Rename(oldPath, newPath string) error {
	f, ok := d.files[oldPath]
	if !ok {
		return fmt.Errorf("disk: rename: no such file %q", oldPath)
	}
	d.files[newPath] = f
	delete(d.files, oldPath)
	return nil
}

// List returns all file paths in sorted order. An installed list-fault
// injector may damage the result: omit entries (lost dirents) or add
// phantom ".tmp" siblings of real entries (stale dirents from an
// unsynced rename). Damage affects only what the listing claims — the
// files themselves are untouched, and direct-path Reads still work.
func (d *Disk) List() []string {
	out := make([]string, 0, len(d.files))
	for p := range d.files {
		out = append(out, p)
	}
	sort.Strings(out)
	if d.listInjector == nil {
		return out
	}
	damaged := make([]string, 0, len(out))
	seen := make(map[string]bool, len(out)+2)
	for _, p := range out {
		seen[p] = true
	}
	var phantoms []string
	for _, p := range out {
		drop, phantom := d.listInjector.decide(p)
		if !drop {
			damaged = append(damaged, p)
		}
		if phantom {
			ph := p + ".tmp"
			if !seen[ph] {
				seen[ph] = true
				phantoms = append(phantoms, ph)
			}
		}
	}
	damaged = append(damaged, phantoms...)
	sort.Strings(damaged)
	return damaged
}

// SetListFaultInjector installs the directory-damage schedule.
func (d *Disk) SetListFaultInjector(plan ListFaultPlan) {
	d.listInjector = &listFaultInjector{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// ClearListFaultInjector removes the directory-damage schedule, so
// later listings see the true disk.
func (d *Disk) ClearListFaultInjector() { d.listInjector = nil }

// ListFaultStats returns the list injector's counters (zero value if
// no injector is installed).
func (d *Disk) ListFaultStats() ListFaultStats {
	if d.listInjector == nil {
		return ListFaultStats{}
	}
	return d.listInjector.stats
}

// DumpTo writes every simulated file under a real directory, preserving
// paths. Together with LoadDiskFrom it lets the post-processing tools
// run standalone on archived profile data, like oparchive/opreport.
func (d *Disk) DumpTo(dir string) error {
	for _, p := range d.List() {
		data, err := d.Read(p)
		if err != nil {
			return err
		}
		dst := filepath.Join(dir, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// LoadDiskFrom builds a Disk from a directory previously written by
// DumpTo (or assembled by hand).
func LoadDiskFrom(dir string) (*Disk, error) {
	d := NewDisk()
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		d.Append(strings.ReplaceAll(filepath.ToSlash(rel), "//", "/"), data)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Loading is an offline operation; reset the accounting so the
	// loaded disk does not claim simulated write activity.
	d.BytesWritten, d.Writes = 0, 0
	return d, nil
}

// Write-path cost model (cycles). A write traverses sys_write →
// copy_from_user → vfs_write → generic_file_write; the per-byte factor
// models the user-to-pagecache copy.
const (
	writeBaseOps    = 60
	writeOpsPerWord = 1 // one op per 16 bytes copied
)

// copyBounceBuf is the fixed kernel bounce buffer the write path's
// user-to-pagecache copy streams through. Only the address pattern
// matters to the cache model (the simulated MMU has no mappings); a
// fixed hot buffer below the hypervisor hole models the pagecache
// page being filled, 16 bytes per copy op.
const copyBounceBuf = addr.Address(0xF7F0_0000)

// SysWrite performs a write syscall on behalf of p: kernel-mode
// simulated execution proportional to the payload plus the append
// itself. This is the cost the paper's VM agent pays when it "writes
// out a JIT code map to disk" and the OProfile daemon pays writing
// sample files — the cost Figure 2's long-benchmark amortization claim
// is about.
//
// The write can fail: an installed fault injector may deliver EIO,
// ENOSPC, a torn (prefix-only) write, a latency spike, or a crash that
// kills the writing process. A killed process's writes always fail
// with ErrCrashed and never touch the disk.
func (k *Kernel) SysWrite(p *Process, path string, data []byte) error {
	if p != nil && p.killed {
		return ErrCrashed
	}
	k.ExecKernel("sys_write", writeBaseOps/3, 1)
	// The user-to-pagecache copy is real memory traffic: a sequential
	// run over the bounce buffer, one op per 16 bytes.
	k.ExecKernelMem("copy_from_user", writeBaseOps/3+len(data)/16*writeOpsPerWord, 1, copyBounceBuf, 16)
	k.ExecKernel("vfs_write", writeBaseOps/3, 1)
	k.ExecKernel("generic_file_write", writeBaseOps/2, 1)
	// Every armed injector proposes (advancing its own deterministic
	// schedule); the first non-none proposal wins and only the winner
	// records an injection, so composed schedules never count faults
	// they did not deliver.
	kind, winner := FaultNone, (*faultInjector)(nil)
	for _, fi := range k.injectors {
		if pk := fi.propose(path); pk != FaultNone && kind == FaultNone {
			kind, winner = pk, fi
		}
	}
	if winner != nil {
		winner.note(kind)
	}
	switch kind {
	case FaultEIO:
		return ErrIO
	case FaultENOSPC:
		if n := winner.cutShort(len(data)); n > 0 {
			k.disk.Append(path, data[:n])
		}
		return ErrNoSpace
	case FaultTorn:
		if n := winner.cutTorn(len(data)); n > 0 {
			k.disk.Append(path, data[:n])
		}
		return ErrIO
	case FaultLatency:
		k.disk.Append(path, data)
		k.core.AdvanceIdle(winner.plan.LatencyCycles)
		return nil
	case FaultCrash:
		if n := winner.cutShort(len(data)); n > 0 {
			k.disk.Append(path, data[:n])
		}
		k.Kill(p)
		return ErrCrashed
	}
	k.disk.Append(path, data)
	return nil
}

// SyncLatencyCycles is the simulated rotational-disk commit latency a
// synchronous write stalls for (~17 ms at the 3.4 MHz clock: seek +
// rotational delay + journal commit on a 2005 desktop disk).
const SyncLatencyCycles = 58_000

// SysWriteSync is SysWrite followed by a synchronous commit: the caller
// stalls for the disk latency (charged as halted time — the CPU is not
// executing the process while the platter seeks). The paper's VM agent
// pays this at every epoch-boundary code-map write, which is why "longer
// running benchmarks generally experienced the smaller slowdowns, due to
// the amortization of the cost of writing out the code maps" (§4.3).
func (k *Kernel) SysWriteSync(p *Process, path string, data []byte) error {
	err := k.SysWrite(p, path, data)
	if p == nil || !p.killed {
		k.core.AdvanceIdle(SyncLatencyCycles)
	}
	return err
}

// SysRename renames a file on behalf of p. It is the atomic commit of
// the temp-then-rename protocol; the rename itself is metadata-only
// and either fully happens or not at all. An installed fault injector
// may strike the commit: fail-before (destination never appears, temp
// survives as an orphan), fail-after (the rename is durable but the
// caller sees an error — the ambiguous outcome a recovery protocol
// must tolerate), or crash-mid (the renaming process dies before the
// rename applies). Faults match against the destination path.
func (k *Kernel) SysRename(p *Process, oldPath, newPath string) error {
	if p != nil && p.killed {
		return ErrCrashed
	}
	k.ExecKernel("sys_rename", writeBaseOps/2, 1)
	kind, winner := FaultNone, (*faultInjector)(nil)
	for _, fi := range k.injectors {
		if pk := fi.proposeRename(newPath); pk != FaultNone && kind == FaultNone {
			kind, winner = pk, fi
		}
	}
	if winner != nil {
		winner.note(kind)
	}
	switch kind {
	case FaultRenameBefore:
		return ErrIO
	case FaultRenameCrash:
		k.Kill(p)
		return ErrCrashed
	case FaultRenameAfter:
		if err := k.disk.Rename(oldPath, newPath); err != nil {
			return err
		}
		return ErrIO
	}
	return k.disk.Rename(oldPath, newPath)
}
