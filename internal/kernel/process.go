package kernel

import (
	"fmt"

	"viprof/internal/addr"
	"viprof/internal/cpu"
	"viprof/internal/image"
)

// NewProcess creates a process with a fresh address space (kernel
// mappings included) and registers it with the scheduler as runnable.
func (k *Kernel) NewProcess(name string, exec Executor) (*Process, error) {
	sp := addr.NewSpace()
	for _, v := range k.kernSpace.All() {
		if err := sp.Map(v); err != nil {
			return nil, fmt.Errorf("kernel: mapping kernel into %s: %v", name, err)
		}
	}
	p := &Process{
		PID:       k.nextPID,
		Name:      name,
		Space:     sp,
		exec:      exec,
		state:     stateRunnable,
		cpu:       k.spawned % len(k.cores),
		heapAlloc: addr.NewAllocator(HeapBase, StackTop-0x100_0000),
		libAlloc:  addr.NewAllocator(LibBase, HeapBase),
		userAlloc: addr.NewAllocator(UserBase, LibBase),
	}
	k.nextPID++
	k.spawned++
	k.procs = append(k.procs, p)
	return p, nil
}

// LoadImage maps an object file into the process at the next free slot
// of the appropriate region (user text for executables, library region
// for .so names) and returns its base address.
func (k *Kernel) LoadImage(p *Process, im *image.Image, lib bool) (addr.Address, error) {
	al := p.userAlloc
	if lib {
		al = p.libAlloc
	}
	base, err := al.Alloc(im.Size, 0x1000)
	if err != nil {
		return 0, fmt.Errorf("kernel: loading %s into %s: %v", im.Name, p.Name, err)
	}
	err = p.Space.Map(addr.VMA{
		Start: base,
		End:   base + addr.Address(im.Size),
		Image: im.Name,
		Prot:  addr.ProtRead | addr.ProtExec,
	})
	if err != nil {
		return 0, err
	}
	return base, nil
}

// MapAnon maps size bytes of anonymous memory (heap) into the process
// and returns the base. Executable anonymous mappings are where JIT
// compilers put generated code — the regions OProfile cannot attribute.
func (k *Kernel) MapAnon(p *Process, size uint64, exec bool) (addr.Address, error) {
	base, err := p.heapAlloc.Alloc(size, 0x1000)
	if err != nil {
		return 0, fmt.Errorf("kernel: anon map %d bytes in %s: %v", size, p.Name, err)
	}
	prot := addr.ProtRead | addr.ProtWrite
	if exec {
		prot |= addr.ProtExec
	}
	err = p.Space.Map(addr.VMA{Start: base, End: base + addr.Address(size), Prot: prot})
	if err != nil {
		return 0, err
	}
	return base, nil
}

// Process returns the process with the given PID.
func (k *Kernel) Process(pid int) (*Process, bool) {
	for _, p := range k.procs {
		if p.PID == pid {
			return p, true
		}
	}
	return nil, false
}

// Current returns the currently scheduled process (nil between slices).
func (k *Kernel) Current() *Process { return k.current }

// Processes returns all processes.
func (k *Kernel) Processes() []*Process { return k.procs }

// ExecKernel executes n micro-ops of the named kernel symbol in kernel
// mode at the given per-op cost, walking PCs through the symbol's
// range. It is how all simulated kernel work is accounted. The walk is
// retired through the core's batched engine one wrap-around segment at
// a time — the PC sequence, and hence every sample and cache event, is
// identical to the per-op loop it replaces.
func (k *Kernel) ExecKernel(symbol string, n int, cost uint32) {
	v, ok := k.kernSyms[symbol]
	if !ok {
		panic("kernel: ExecKernel of unknown symbol " + symbol)
	}
	prev := k.core.Context()
	k.core.SetContext(cpu.Context{PID: prev.PID, Kernel: true})
	pc := v.Start
	for n > 0 {
		seg := int((v.End - pc + 3) / 4) // ops before the walk wraps
		if seg > n {
			seg = n
		}
		k.core.ExecBatch(pc, seg, 4, cost)
		n -= seg
		pc += 4 * addr.Address(seg)
		if pc >= v.End {
			pc = v.Start
		}
	}
	k.core.SetContext(prev)
}

// ExecKernelMem is ExecKernel for kernel routines that stream over a
// buffer (copy_from_user and friends): every op carries a memory
// operand walking memStride bytes from mem, retired through the
// core's bulk cache-replay path one wrap-around PC segment at a time.
// The miss sequence and every sample are identical to the per-op loop
// it stands for.
func (k *Kernel) ExecKernelMem(symbol string, n int, cost uint32, mem addr.Address, memStride uint32) {
	v, ok := k.kernSyms[symbol]
	if !ok {
		panic("kernel: ExecKernelMem of unknown symbol " + symbol)
	}
	prev := k.core.Context()
	k.core.SetContext(cpu.Context{PID: prev.PID, Kernel: true})
	pc := v.Start
	for n > 0 {
		seg := int((v.End - pc + 3) / 4)
		if seg > n {
			seg = n
		}
		k.core.ExecMemBatch(pc, seg, 4, cost, mem, memStride)
		mem += addr.Address(uint64(seg) * uint64(memStride))
		n -= seg
		pc += 4 * addr.Address(seg)
		if pc >= v.End {
			pc = v.Start
		}
	}
	k.core.SetContext(prev)
}

// KernelLookup resolves a kernel-space address to the VMA of the kernel
// image or module containing it (profilers attribute kernel samples
// through this).
func (k *Kernel) KernelLookup(a addr.Address) (addr.VMA, bool) {
	return k.kernSpace.Lookup(a)
}

// KernelSymbol returns the absolute address range of a kernel or module
// symbol.
func (k *Kernel) KernelSymbol(name string) (addr.VMA, bool) {
	v, ok := k.kernSyms[name]
	return v, ok
}

// PageFault charges a minor-fault service (no disk: anonymous zero
// page) to the current context. The VM calls it the first time an
// allocation touches a fresh heap page, which is how do_page_fault and
// handle_mm_fault rows get into profiles.
func (k *Kernel) PageFault(p *Process) {
	k.ExecKernel("do_page_fault", 40, 1)
	k.ExecKernel("handle_mm_fault", 110, 1)
	k.faults++
}

// PageFaults returns the number of faults serviced.
func (k *Kernel) PageFaults() uint64 { return k.faults }

// Sleep blocks the process until the given number of cycles has passed.
// The executor must return StepBlocked after calling this.
func (k *Kernel) Sleep(p *Process, cycles uint64) {
	p.state = stateBlocked
	p.wakeAt = k.core.Cycles() + cycles
}

// Block parks the process until someone calls Wake. The executor must
// return StepBlocked after calling this.
func (k *Kernel) Block(p *Process) {
	p.state = stateBlocked
	p.wakeAt = ^uint64(0)
}

// Wake makes a blocked process runnable again. Killed processes stay
// dead: there is no resurrecting a crashed writer.
func (k *Kernel) Wake(p *Process) {
	if p.state == stateBlocked && !p.killed {
		p.state = stateRunnable
		p.wakeAt = 0
	}
}

// Exit marks the process terminated.
func (k *Kernel) Exit(p *Process) { p.state = stateDone }

// Kill marks the process crashed: its pending and future writes fail
// with ErrCrashed, it cannot be woken, and the scheduler reaps it at
// the end of its current slice (the executor may still be on the stack
// when Kill fires from inside one of its own syscalls, so the state
// flip is deferred to the scheduler rather than done here — otherwise
// a post-kill Sleep from the dying executor would overwrite it).
func (k *Kernel) Kill(p *Process) {
	if p == nil || p.state == stateDone {
		return
	}
	p.killed = true
}

// AddTicker registers fn to run (in whatever context the scheduler is
// in) every `period` cycles, checked at scheduling boundaries. The
// hypervisor layer uses this for VCPU slice exits; tests use it for
// periodic assertions.
func (k *Kernel) AddTicker(period uint64, fn func()) {
	if period == 0 {
		return
	}
	k.tickers = append(k.tickers, &ticker{period: period, next: k.core.Cycles() + period, fn: fn})
}

func (k *Kernel) runTickers() {
	now := k.core.Cycles()
	for _, t := range k.tickers {
		for t.next <= now {
			t.next += t.period
			t.fn()
		}
	}
}

// Run drives the multi-queue scheduler until every non-daemon process
// has exited or the cycle limit is hit (0 means no limit). It returns
// an error on limit overrun so runaway workloads fail loudly instead
// of hanging.
//
// Each iteration schedules the core with the least-advanced cycle
// clock (ties to the lowest CPU number), so the per-core clocks stay
// in near-lockstep and every simulated event has a deterministic
// global order for a fixed seed and core count. The chosen core runs
// the next runnable process of its own queue; an empty queue pulls
// work from the first victim queue holding at least two runnable
// processes (stealing a single runnable would just ping-pong it); a
// core with nothing to run or steal idles its clock past the next busy
// core's. On a single-core machine the iteration order — ticker
// firing, round-robin pick, slice jitter RNG draws, idle advancement —
// is exactly the pre-SMP loop's (RunLegacy is that loop, kept verbatim
// as the equivalence oracle).
func (k *Kernel) Run(maxCycles uint64) error {
	for {
		if !k.anyNonDaemonAlive() {
			return nil
		}
		ci := k.minClockCore()
		c := k.cores[ci]
		k.core = c
		if maxCycles > 0 && c.Cycles() > maxCycles {
			return fmt.Errorf("kernel: cycle limit %d exceeded at %d", maxCycles, c.Cycles())
		}
		k.runTickers()
		p := k.pickNextOn(ci)
		if p == nil {
			p = k.stealFor(ci)
		}
		if p == nil {
			if !k.anyRunnable() {
				// Everyone is blocked: idle until the earliest wakeup.
				next := k.earliestWake()
				if next == ^uint64(0) {
					return fmt.Errorf("kernel: deadlock — all processes blocked with no pending wakeup")
				}
				if next > c.Cycles() {
					c.AdvanceIdle(next - c.Cycles())
				}
				k.wakeExpired()
				continue
			}
			// Work exists, but on other queues and not stealable: idle
			// this core just past the next busy core's clock (it was the
			// minimum, so this always advances and the busy core becomes
			// the next minimum), or to the earliest wakeup if sooner.
			target := k.minBusyClock(ci) + 1
			if w := k.earliestWake(); w > c.Cycles() && w < target {
				target = w
			}
			c.AdvanceIdle(target - c.Cycles())
			k.wakeExpired()
			continue
		}
		k.switchTo(p)
		// Small jitter models timer-tick phase and other system noise
		// (paper §4.3 attributes sub-1% run variance to such noise).
		slice := k.Timeslice + uint64(k.rng.Intn(int(k.Timeslice/16)+1))
		c.StartSlice(slice)
		before := c.Cycles()
		res := p.exec.Step(k.m, p)
		// Close any batch the executor left open, so counter state is
		// current at every scheduler boundary (tickers, sleeps, stats).
		c.FlushBatch()
		p.cpuTime += c.Cycles() - before
		if p.killed {
			// Crashed mid-slice (an injected FaultCrash): reap it no
			// matter what the executor reported.
			p.state = stateDone
		} else {
			switch res {
			case StepExit:
				p.state = stateDone
			case StepBlocked:
				if p.state == stateRunnable {
					// Executor said blocked but never arranged a wakeup;
					// treat as a yield to avoid losing the process.
					break
				}
			case StepYield:
				// stays runnable
			}
		}
		k.wakeExpired()
	}
}

// RunLegacy is the pre-SMP single-queue scheduler loop, kept verbatim
// as the reference side of the N=1 equivalence oracle: on a one-core
// machine Run must produce bit-for-bit the same execution (cycles,
// samples, RNG draws, profile bytes) as this loop. It refuses
// multi-core machines.
func (k *Kernel) RunLegacy(maxCycles uint64) error {
	if len(k.cores) != 1 {
		return fmt.Errorf("kernel: RunLegacy on a %d-core machine", len(k.cores))
	}
	for {
		if !k.anyNonDaemonAlive() {
			return nil
		}
		if maxCycles > 0 && k.core.Cycles() > maxCycles {
			return fmt.Errorf("kernel: cycle limit %d exceeded at %d", maxCycles, k.core.Cycles())
		}
		k.runTickers()
		p := k.pickNextLegacy()
		if p == nil {
			next := k.earliestWake()
			if next == ^uint64(0) {
				return fmt.Errorf("kernel: deadlock — all processes blocked with no pending wakeup")
			}
			if next > k.core.Cycles() {
				k.core.AdvanceIdle(next - k.core.Cycles())
			}
			k.wakeExpired()
			continue
		}
		k.switchTo(p)
		slice := k.Timeslice + uint64(k.rng.Intn(int(k.Timeslice/16)+1))
		k.core.StartSlice(slice)
		before := k.core.Cycles()
		res := p.exec.Step(k.m, p)
		k.core.FlushBatch()
		p.cpuTime += k.core.Cycles() - before
		if p.killed {
			p.state = stateDone
		} else {
			switch res {
			case StepExit:
				p.state = stateDone
			case StepBlocked:
				if p.state == stateRunnable {
					break
				}
			case StepYield:
			}
		}
		k.wakeExpired()
	}
}

// switchTo performs a context switch to p on the scheduling core,
// charging its cost and disturbing that core's L1 (a newly scheduled
// process sees a cold private cache). Per-core warm-cache ownership is
// tracked in currents: re-running the same process on the same core
// charges nothing, exactly the pre-SMP behavior on one core.
func (k *Kernel) switchTo(p *Process) {
	ci := p.cpu
	if k.currents[ci] != p {
		k.ctxSwitches++
		k.core.SetContext(cpu.Context{PID: 0, Kernel: true})
		k.ExecKernel("schedule", int(k.SwitchCost/2), 1)
		k.ExecKernel("__switch_to", int(k.SwitchCost/2), 1)
		if k.core.Mem != nil && k.currents[ci] != nil {
			k.core.Mem.L1.Flush()
		}
		k.currents[ci] = p
	}
	k.current = p
	k.core.SetContext(cpu.Context{PID: p.PID, Kernel: false})
}

func (k *Kernel) anyNonDaemonAlive() bool {
	for _, p := range k.procs {
		if !p.Daemon && p.state != stateDone {
			return true
		}
	}
	return false
}

// minClockCore returns the core with the least-advanced cycle clock,
// ties to the lowest CPU number.
func (k *Kernel) minClockCore() int {
	ci := 0
	min := k.cores[0].Cycles()
	for i := 1; i < len(k.cores); i++ {
		if c := k.cores[i].Cycles(); c < min {
			min, ci = c, i
		}
	}
	return ci
}

// minBusyClock returns the smallest cycle clock among cores other than
// ci whose queues hold runnable work. Callers guarantee one exists
// (anyRunnable and an empty queue on ci).
func (k *Kernel) minBusyClock(ci int) uint64 {
	min := ^uint64(0)
	for i, c := range k.cores {
		if i == ci {
			continue
		}
		if k.hasRunnable(i) && c.Cycles() < min {
			min = c.Cycles()
		}
	}
	return min
}

func (k *Kernel) hasRunnable(ci int) bool {
	for _, p := range k.procs {
		if p.cpu == ci && p.state == stateRunnable {
			return true
		}
	}
	return false
}

func (k *Kernel) anyRunnable() bool {
	for _, p := range k.procs {
		if p.state == stateRunnable {
			return true
		}
	}
	return false
}

// pickNextOn returns the next runnable process of core ci's queue,
// round-robin starting after the process the core last ran.
func (k *Kernel) pickNextOn(ci int) *Process {
	start := 0
	if cur := k.currents[ci]; cur != nil {
		for i, p := range k.procs {
			if p == cur {
				start = i + 1
				break
			}
		}
	}
	n := len(k.procs)
	for i := 0; i < n; i++ {
		p := k.procs[(start+i)%n]
		if p.cpu == ci && p.state == stateRunnable {
			return p
		}
	}
	return nil
}

// pickNextLegacy is the pre-SMP single-queue pick, used by RunLegacy.
func (k *Kernel) pickNextLegacy() *Process {
	// Round-robin starting after the current process.
	start := 0
	for i, p := range k.procs {
		if p == k.current {
			start = i + 1
			break
		}
	}
	n := len(k.procs)
	for i := 0; i < n; i++ {
		p := k.procs[(start+i)%n]
		if p.state == stateRunnable {
			return p
		}
	}
	return nil
}

// Pin fixes the process to core ci's run queue (sched_setaffinity with
// a single-CPU mask): placement moves immediately and the work stealer
// will never migrate it. The core index wraps, so callers can pin
// shard i of a service to core i without knowing the core count.
func (k *Kernel) Pin(p *Process, ci int) {
	n := len(k.cores)
	p.cpu = ((ci % n) + n) % n
	p.pinned = true
}

// stealFor implements pull-based migration: core ci's queue is empty,
// so scan the other queues in deterministic order (ci+1, ci+2, ...)
// for one holding at least two runnable processes, and pull the last
// runnable that is not the victim core's warm-cache owner and is not
// affinity-pinned. Requiring two keeps a lone runnable process from
// ping-ponging between idle cores; sparing the owner keeps its warm L1
// worth something; sparing pinned processes is the affinity contract.
func (k *Kernel) stealFor(ci int) *Process {
	n := len(k.cores)
	for d := 1; d < n; d++ {
		vi := (ci + d) % n
		runnable := 0
		var cand *Process
		for _, p := range k.procs {
			if p.cpu == vi && p.state == stateRunnable {
				runnable++
				if p != k.currents[vi] && !p.pinned {
					cand = p
				}
			}
		}
		if runnable >= 2 && cand != nil {
			cand.cpu = ci
			k.migrations++
			return cand
		}
	}
	return nil
}

func (k *Kernel) earliestWake() uint64 {
	min := ^uint64(0)
	for _, p := range k.procs {
		if p.state == stateBlocked && p.wakeAt < min {
			min = p.wakeAt
		}
	}
	return min
}

func (k *Kernel) wakeExpired() {
	now := k.core.Cycles()
	for _, p := range k.procs {
		if p.killed {
			if p.state != stateDone {
				p.state = stateDone
			}
			continue
		}
		if p.state == stateBlocked && p.wakeAt != ^uint64(0) && p.wakeAt <= now {
			p.state = stateRunnable
		}
	}
}
