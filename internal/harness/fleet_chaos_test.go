package harness

import (
	"os"
	"strconv"
	"testing"

	"viprof/internal/fleet"
)

// The fleet conservation sweep: across composed network + disk chaos,
// every run must balance the fleet ledger — sum of per-host holds ==
// collector aggregate, key for key, with zero misattribution — and
// degradation must be exactly as loud as the injected destruction.

func checkFleetInvariants(t *testing.T, r *FleetChaosResult) {
	t.Helper()
	res := r.Result
	if res.RunErr != nil {
		t.Fatalf("machine run failed: %v", res.RunErr)
	}

	// Conservation and misattribution, against the live aggregate and
	// (when the journal was readable) the offline replay. CheckConservation
	// compares key for key, so a single sample double-counted by a
	// duplicate, lost by a reorder, or attributed to the wrong host's
	// proc fails here.
	aggs := map[string]*fleet.Aggregate{"live": res.Collector.Aggregate()}
	if res.Replayed != nil {
		aggs["replayed"] = res.Replayed
	} else if !res.Integrity.JournalUnreadable {
		t.Error("no replayed aggregate but journal not marked unreadable")
	}
	for name, agg := range aggs {
		c := fleet.CheckConservation(res.Senders, agg)
		if !c.Balanced() {
			t.Errorf("%s conservation violated:\n%v", name, c.Mismatches)
		}
		if c.GeneratedSamples == 0 {
			t.Error("run generated no samples")
		}
	}

	destructive := r.TotalDestructive()
	degraded := res.Integrity.Degraded()

	// A bit-perfect run must be bit-perfect everywhere: no degradation,
	// nothing held, every sample aggregated, and every code map
	// replicated byte-for-byte into every view of the store.
	if destructive == 0 {
		if degraded {
			t.Errorf("zero destructive faults but integrity degraded:\n%s",
				fleet.FormatFleetIntegrity(res.Integrity))
		}
		c := fleet.CheckConservation(res.Senders, res.Collector.Aggregate())
		if c.HeldSamples != 0 {
			t.Errorf("zero destructive faults but %d samples held", c.HeldSamples)
		}
		if res.SupervisorGaveUp {
			t.Error("zero destructive faults but supervisor gave up")
		}
		var mapsGen, mapsAcked uint64
		for _, s := range res.Senders {
			st := s.Stats()
			mapsGen += st.MapsGenerated
			mapsAcked += st.MapsAcked
		}
		if mapsGen == 0 {
			t.Error("run generated no code maps")
		}
		if mapsAcked != mapsGen {
			t.Errorf("zero destructive faults but only %d/%d maps acked", mapsAcked, mapsGen)
		}
		for name, agg := range aggs {
			if bad := fleet.CheckMapReplication(res.Senders, agg); len(bad) > 0 {
				t.Errorf("%s map replication violated:\n%v", name, bad)
			}
		}
	}

	// Windowed queries must partition the aggregate at any cut, in every
	// run — compacted or not, degraded or not.
	sumWindow := func(agg *fleet.Aggregate, from, to uint64) (n uint64) {
		for _, c := range agg.QueryWindow(from, to) {
			n += c
		}
		return n
	}
	for name, agg := range aggs {
		if min, max, ok := agg.TimeBounds(); ok && agg.Total() > 0 {
			cut := min + (max-min)/2
			lo, hi := sumWindow(agg, 0, cut), sumWindow(agg, cut, ^uint64(0))
			if lo+hi != agg.Total() {
				t.Errorf("%s window partition broken at %d: %d + %d != %d",
					name, cut, lo, hi, agg.Total())
			}
		}
	}

	// Degradation anywhere must be rooted in counted destruction —
	// no silent self-inflicted damage, no false alarms.
	if degraded && destructive == 0 {
		t.Errorf("degraded with zero destructive faults:\n%s",
			fleet.FormatFleetIntegrity(res.Integrity))
	}

	// A supervisor that gave up is the loudest degradation of all.
	if res.SupervisorGaveUp && !degraded {
		t.Error("supervisor gave up but integrity reports clean")
	}

	// Per-event spill/lost accounting must balance the sender ledgers.
	for _, s := range res.Senders {
		st := s.Stats()
		var byEv uint64
		for _, n := range st.SpilledByEvent {
			byEv += n
		}
		if byEv != st.SpilledSamples {
			t.Errorf("host stats: per-event spilled %d != spilled samples %d", byEv, st.SpilledSamples)
		}
		byEv = 0
		for _, n := range st.LostByEvent {
			byEv += n
		}
		if byEv != st.LostSamples {
			t.Errorf("host stats: per-event lost %d != lost samples %d", byEv, st.LostSamples)
		}
	}
}

func fleetSweepSeeds(t *testing.T, def int) int {
	if env := os.Getenv("VIPROF_FLEET_SEEDS"); env != "" {
		n, err := strconv.Atoi(env)
		if err != nil || n <= 0 {
			t.Fatalf("bad VIPROF_FLEET_SEEDS %q", env)
		}
		return n
	}
	return def
}

// TestFleetChaos is the fleet-smoke sweep: enough seeds to cover every
// scenario in isolation plus a band of compositions.
func TestFleetChaos(t *testing.T) {
	seeds := fleetSweepSeeds(t, 25)
	if seeds < int(numFleetScenarios) {
		seeds = int(numFleetScenarios)
	}
	for seed := 0; seed < seeds; seed++ {
		seed := int64(seed)
		sched := FleetScheduleOf(seed)
		t.Run(sched.String()+"/"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			r, err := RunFleetChaos(seed)
			if err != nil {
				t.Fatal(err)
			}
			checkFleetInvariants(t, r)
		})
	}
}

// TestFleetChaosNightly widens the sweep (set VIPROF_FLEET_SEEDS, e.g.
// 300 in the chaos-nightly lane); without the env var it defers to
// TestFleetChaos's coverage.
func TestFleetChaosNightly(t *testing.T) {
	if os.Getenv("VIPROF_FLEET_SEEDS") == "" {
		t.Skip("set VIPROF_FLEET_SEEDS to run the nightly fleet sweep")
	}
	if testing.Short() {
		t.Skip("nightly sweep skipped in -short mode")
	}
	seeds := fleetSweepSeeds(t, 300)
	for seed := 0; seed < seeds; seed++ {
		seed := int64(seed)
		sched := FleetScheduleOf(seed)
		t.Run(sched.String()+"/"+strconv.FormatInt(seed, 10), func(t *testing.T) {
			t.Parallel()
			r, err := RunFleetChaos(seed)
			if err != nil {
				t.Fatal(err)
			}
			checkFleetInvariants(t, r)
		})
	}
}
