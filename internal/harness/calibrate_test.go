package harness

import (
	"testing"
	"time"

	"viprof/internal/workload"
)

// TestCalibration reports each benchmark's simulated base time against
// its Figure 3 target at a reduced scale. Run with -v to see the
// numbers; the assertion is deliberately loose (2x band) because the
// point is order-of-magnitude agreement, with exact calibration checked
// at full scale in EXPERIMENTS.md.
func TestCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	const scale = 0.1
	for _, name := range []string{"fop", "JVM98", "antlr", "ps"} {
		spec, err := workload.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		r, err := RunOnce(spec, RunConfig{Kind: ProfNone}, Options{Scale: scale, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		target := spec.BaseSeconds * scale
		t.Logf("%-10s sim=%6.2fs target=%6.2fs ratio=%4.2f real=%5.1fs vm=%+v",
			name, r.Seconds, target, r.Seconds/target, time.Since(start).Seconds(), r.VMStats)
		if r.Seconds < target/2.5 || r.Seconds > target*2.5 {
			t.Errorf("%s: base time %.2fs far from scaled target %.2fs", name, r.Seconds, target)
		}
	}
}
