package harness

import (
	"math/rand"

	"viprof/internal/addr"
	"viprof/internal/image"
	"viprof/internal/kernel"
)

// Desktop background noise. The paper's Figure 1 shows X-server
// samples (libxul.so.0d, libfb.so) interleaved with the benchmark, and
// §4.3 attributes occasional apparent speedups to "system noise and
// the uncertainty involved in full system measurements". StartNoise
// adds a low-duty background process executing in those images.

type noiseProc struct {
	rng  *rand.Rand
	syms []addr.VMA
}

// StartNoise spawns the background process with libxul/libfb mapped.
func StartNoise(m *kernel.Machine, seed int64) error {
	n := &noiseProc{rng: rand.New(rand.NewSource(seed))}
	proc, err := m.Kern.NewProcess("Xorg", n)
	if err != nil {
		return err
	}
	proc.Daemon = true

	xul := image.NewBuilder("libxul.so.0d")
	xul.Add("nsDocLoader.OnProgress", 2000)
	xul.Add("js_Interpret", 3000)
	xulImg, err := xul.Image()
	if err != nil {
		return err
	}
	fb := image.NewBuilder("libfb.so")
	fb.Add("fbCopyAreammx", 1200)
	fb.Add("fbCompositeSolidMask_nx8x8888mmx", 1600)
	fbImg, err := fb.Image()
	if err != nil {
		return err
	}
	for _, im := range []*image.Image{xulImg, fbImg} {
		base, err := m.Kern.LoadImage(proc, im, true)
		if err != nil {
			return err
		}
		for _, s := range im.Symbols() {
			n.syms = append(n.syms, addr.VMA{
				Start: base + s.Off,
				End:   base + s.Off + addr.Address(s.Size),
				Image: im.Name,
			})
		}
	}
	return nil
}

// Step implements kernel.Executor: sleep most of the time, wake to
// paint a little.
func (n *noiseProc) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	burst := 200 + n.rng.Intn(2500)
	sym := n.syms[n.rng.Intn(len(n.syms))]
	pc := sym.Start
	for i := 0; i < burst && !m.CPU().Expired(); i++ {
		if i%5 == 0 {
			mem := 0xA000_0000 + addr.Address(n.rng.Intn(1<<20))
			// Scattered paint traffic: BatchMemOp proves the rare
			// same-line repeats and takes the precise path otherwise.
			m.CPU().BatchMemOp(pc, 1, mem)
		} else {
			// The slice budget stays exact under batching, so the
			// Expired check above behaves identically.
			m.CPU().BatchOp(pc, 1)
		}
		pc += 4
		if pc >= sym.End {
			pc = sym.Start
		}
	}
	// Sleep 20-120 ms simulated.
	m.Kern.Sleep(p, uint64(68_000+n.rng.Intn(340_000)))
	return kernel.StepBlocked
}
