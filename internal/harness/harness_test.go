package harness

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"viprof/internal/hpc"
	"viprof/internal/workload"
)

const testScale = 0.08

func TestTrimmedMean(t *testing.T) {
	tests := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{4, 6}, 5},
		{[]float64{1, 2, 3}, 2},             // drops 1 and 3
		{[]float64{100, 2, 2, 2, 0}, 2},     // outliers dropped
		{[]float64{3, 1, 2, 4, 10, 0}, 2.5}, // (1+2+3+4)/4
	}
	for _, tt := range tests {
		if got := TrimmedMean(tt.in); got != tt.want {
			t.Errorf("TrimmedMean(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

// Property: the trimmed mean lies within [min, max] of the inputs and
// is invariant under permutation.
func TestTrimmedMeanQuick(t *testing.T) {
	f := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if x == x && x < 1e12 && x > -1e12 { // drop NaN/huge
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := TrimmedMean(clean)
		min, max := clean[0], clean[0]
		for _, x := range clean {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if m < min-1e-9 || m > max+1e-9 {
			return false
		}
		// permutation invariance: reverse
		rev := make([]float64, len(clean))
		for i, x := range clean {
			rev[len(clean)-1-i] = x
		}
		return TrimmedMean(rev) == m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunConfigLabels(t *testing.T) {
	tests := []struct {
		rc   RunConfig
		want string
	}{
		{RunConfig{Kind: ProfNone}, "base"},
		{RunConfig{Kind: ProfOprofile, Period: 90_000}, "Oprof 90K"},
		{RunConfig{Kind: ProfVIProf, Period: 45_000}, "VIProf 45K"},
		{RunConfig{Kind: ProfVIProf, Period: 450_000}, "VIProf 450K"},
	}
	for _, tt := range tests {
		if got := tt.rc.Label(); got != tt.want {
			t.Errorf("Label() = %q, want %q", got, tt.want)
		}
	}
}

func TestRunOnceBaseVsProfiled(t *testing.T) {
	spec, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunOnce(spec, RunConfig{Kind: ProfNone}, Options{Scale: testScale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	vip, err := RunOnce(spec, RunConfig{Kind: ProfVIProf, Period: 45_000},
		Options{Scale: testScale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Seconds <= 0 || vip.Seconds <= base.Seconds {
		t.Errorf("profiling did not slow the run: base %.3f vs viprof %.3f",
			base.Seconds, vip.Seconds)
	}
	if vip.DriverStats.NMIs == 0 || vip.DriverStats.JITSamples == 0 {
		t.Errorf("driver stats empty: %+v", vip.DriverStats)
	}
	if vip.AgentStats.MapsWritten == 0 {
		t.Errorf("agent wrote no maps: %+v", vip.AgentStats)
	}
	if base.VMStats.BytecodesRun != vip.VMStats.BytecodesRun {
		t.Errorf("profiling changed the program: %d vs %d bytecodes",
			base.VMStats.BytecodesRun, vip.VMStats.BytecodesRun)
	}
}

func TestRunOnceKeepSession(t *testing.T) {
	spec, _ := workload.ByName("fop")
	r, err := RunOnce(spec, RunConfig{Kind: ProfVIProf, Period: 90_000},
		Options{Scale: testScale, Seed: 1, KeepSession: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Session == nil || r.Machine == nil || r.VM == nil || r.Proc == nil {
		t.Error("session state not kept")
	}
	r2, err := RunOnce(spec, RunConfig{Kind: ProfVIProf, Period: 90_000},
		Options{Scale: testScale, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Session != nil || r2.Machine != nil {
		t.Error("session state kept without KeepSession")
	}
}

func TestRepeatProtocol(t *testing.T) {
	spec, _ := workload.ByName("fop")
	s, err := Repeat(spec, RunConfig{Kind: ProfNone, Noise: true}, 5,
		Options{Scale: testScale, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Seconds) != 5 {
		t.Fatalf("got %d runs", len(s.Seconds))
	}
	// Noise seeds differ per run: times should not all be identical.
	allSame := true
	for _, x := range s.Seconds[1:] {
		if x != s.Seconds[0] {
			allSame = false
		}
	}
	if allSame {
		t.Error("no run-to-run variance despite noise")
	}
	if s.Mean <= 0 {
		t.Error("mean not computed")
	}
}

func TestNoiseProcessSamplesAppear(t *testing.T) {
	spec, _ := workload.ByName("fop")
	r, err := RunOnce(spec, RunConfig{Kind: ProfVIProf, Period: 20_000, Noise: true},
		Options{Scale: testScale, Seed: 9, KeepSession: true})
	if err != nil {
		t.Fatal(err)
	}
	data, err := r.Machine.Kern.Disk().Read("var/lib/oprofile/samples.log")
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.Contains(text, "libxul.so.0d") && !strings.Contains(text, "libfb.so") {
		t.Error("no X-server noise samples (Figure 1 shows libxul/libfb rows)")
	}
}

func TestFigure2SubsetShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, err := Figure2Subset([]string{"fop"}, testScale, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fig.Format(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Oprof 90K", "VIProf 45K", "VIProf 90K", "VIProf 450K", "fop", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("Figure 2 output missing %q:\n%s", want, out)
		}
	}
	// Core ordering claims: all configs slow the system down; 45K costs
	// more than 450K.
	for _, label := range []string{"Oprof 90K", "VIProf 45K", "VIProf 90K", "VIProf 450K"} {
		if fig.Slowdown["fop"][label] < 1.0 {
			t.Errorf("%s produced a speedup over base: %v", label, fig.Slowdown["fop"][label])
		}
	}
	if fig.Slowdown["fop"]["VIProf 45K"] <= fig.Slowdown["fop"]["VIProf 450K"] {
		t.Errorf("45K (%v) not costlier than 450K (%v)",
			fig.Slowdown["fop"]["VIProf 45K"], fig.Slowdown["fop"]["VIProf 450K"])
	}
}

func TestFigure3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, err := Figure3(testScale, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Rows) != 10 { // 9 benchmarks + average
		t.Fatalf("%d rows", len(fig.Rows))
	}
	var buf bytes.Buffer
	if err := fig.Format(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "pseudojbb") {
		t.Error("format lost benchmarks")
	}
	// Relative ordering of base times must match the paper: xalan is
	// the longest, fop the shortest.
	times := map[string]float64{}
	for _, r := range fig.Rows {
		times[r.Bench] = r.Seconds
	}
	for _, b := range workload.Names() {
		if b == "xalan" {
			continue
		}
		if times[b] >= times["xalan"] {
			t.Errorf("%s (%v) not shorter than xalan (%v)", b, times[b], times["xalan"])
		}
		if b != "fop" && times[b] <= times["fop"] {
			t.Errorf("%s (%v) not longer than fop (%v)", b, times[b], times["fop"])
		}
	}
}

func TestFigure1Reports(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	fig, err := Figure1(testScale, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fig.Rendered, "--- VIProf ---") ||
		!strings.Contains(fig.Rendered, "--- Oprofile ---") {
		t.Fatal("rendering incomplete")
	}
	// Upper half names the paper's hot method; lower half cannot.
	if _, ok := fig.VIProf.Find("edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine"); !ok {
		t.Error("VIProf half missing Scanner.parseLine")
	}
	if _, ok := fig.OProfile.Find("edu.unm.cs.oal.dacapo.javapostscript.red.scanner.Scanner.parseLine"); ok {
		t.Error("OProfile half resolved a Java method")
	}
	// Lower half must show the black boxes.
	sawAnon := false
	for _, r := range fig.OProfile.Rows {
		if strings.HasPrefix(r.Image, "anon (range:") {
			sawAnon = true
		}
	}
	if !sawAnon {
		t.Error("OProfile half has no anonymous rows")
	}
	// Both halves use both events.
	if len(fig.VIProf.Events) != 2 || fig.VIProf.Totals[hpc.BSQCacheReference] == 0 {
		t.Error("miss event missing from VIProf half")
	}
}
