// Package harness runs the paper's experiments: it executes workloads
// on fresh simulated machines under the base / OProfile / VIProf
// configurations, applies the paper's measurement protocol ("running
// the benchmark 10 times, eliminating the fastest and slowest run, and
// then averaging the remaining 8", §4.1), and formats the results as
// the paper's figures.
package harness

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"viprof/internal/cache"
	"viprof/internal/core"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/jvm"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/workload"
	"viprof/internal/xen"
)

// ProfKind selects the profiling configuration.
type ProfKind int

// Profiler configurations.
const (
	ProfNone ProfKind = iota
	ProfOprofile
	ProfVIProf
)

// String names the configuration as Figure 2's legend does.
func (k ProfKind) String() string {
	switch k {
	case ProfOprofile:
		return "Oprof"
	case ProfVIProf:
		return "VIProf"
	default:
		return "base"
	}
}

// RunConfig is one experimental cell.
type RunConfig struct {
	Kind ProfKind
	// Period is the cycles-event sampling period (45K/90K/450K in
	// Figure 2). Ignored for ProfNone.
	Period uint64
	// MissPeriod, when nonzero, also arms the L2-miss counter (the
	// two-event setup of Figure 1).
	MissPeriod uint64
	// CallGraphDepth enables stack sampling (VIProf only).
	CallGraphDepth int
	// FullMaps selects the full-map ablation agent mode (VIProf only).
	FullMaps bool
	// EagerMoveLog selects the log-inside-GC ablation mode (VIProf
	// only).
	EagerMoveLog bool
	// Noise adds the desktop background process (X server images).
	Noise bool
	// Xen runs the whole stack on the simulated hypervisor (the
	// paper's future-work layer); hypervisor samples appear as
	// xen-syms rows.
	Xen bool
}

// Label renders the cell name as the paper's Figure 2 legend ("Oprof
// 90K", "VIProf 45K", ...).
func (rc RunConfig) Label() string {
	if rc.Kind == ProfNone {
		return "base"
	}
	return fmt.Sprintf("%s %dK", rc.Kind, rc.Period/1000)
}

// Result is one benchmark execution.
type Result struct {
	Bench   string
	Config  RunConfig
	Seconds float64 // simulated wall time of the benchmark run
	Cycles  uint64

	VMStats     jvm.Stats
	DriverStats oprofile.DriverStats
	AgentStats  core.AgentStats

	// Session state for report generation (nil unless KeepSession).
	Machine *kernel.Machine
	Session *core.Session
	VM      *jvm.VM
	Proc    *kernel.Process
}

// Options tune a run.
type Options struct {
	// Scale multiplies workload outer iterations (1.0 = paper-scale).
	Scale float64
	// Seed drives machine noise; vary per repetition.
	Seed int64
	// KeepSession retains the machine/session in the Result for
	// post-processing (Figure 1 report generation).
	KeepSession bool
	// NoBatch disables the core's event-horizon batched execution and
	// forces the precise per-op path. It exists for the determinism
	// tests and benchmarks proving the two paths are bit-for-bit
	// identical; production runs leave it false.
	NoBatch bool
	// NoRecovery skips the session's startup recovery pass (VIProf
	// runs only). Production runs leave it false — recovery on a fresh
	// disk is a cheap no-decision pass — but tests that stage var/
	// themselves can opt out.
	NoRecovery bool
	// Cores sets the simulated machine's core count (0 or 1 = the
	// classic single-core machine). Multi-core machines share an L2
	// and coherency directory; each core gets private L1/TLBs and its
	// own counter bank, and the profiling pipeline shards per CPU.
	Cores int
	// legacyRun drives the run through the kernel's pre-SMP scheduler
	// loop (RunLegacy), kept verbatim as the single-core differential
	// oracle. Test-only; requires Cores <= 1.
	legacyRun bool
}

// BuildMachine constructs a simulated machine with n cores (n <= 1
// builds the classic single-core machine) sharing one L2 and coherency
// directory, each with a private L1/TLB pair and its own counter bank.
func BuildMachine(n int, seed int64) *kernel.Machine {
	if n <= 1 {
		return kernel.NewMachine(cpu.New(hpc.NewBank(), cache.DefaultHierarchy()), seed)
	}
	hs := cache.SharedHierarchies(n)
	cores := make([]*cpu.Core, n)
	for i := range cores {
		cores[i] = cpu.NewWithID(i, hpc.NewBank(), hs[i])
	}
	return kernel.NewMachineN(seed, cores...)
}

// RunOnce executes one benchmark under one configuration on a fresh
// machine and returns the measurement.
func RunOnce(spec workload.Spec, rc RunConfig, opt Options) (*Result, error) {
	if opt.Scale <= 0 {
		opt.Scale = 1.0
	}
	prog, err := workload.Build(spec, opt.Scale)
	if err != nil {
		return nil, err
	}
	machine := BuildMachine(opt.Cores, opt.Seed)
	if opt.NoBatch {
		for _, c := range machine.Cores {
			c.SetBatching(false)
		}
	}
	if rc.Xen {
		if _, err := xen.Enable(machine, xen.Config{}); err != nil {
			return nil, err
		}
	}
	if rc.Noise {
		if err := StartNoise(machine, opt.Seed^0x5EED); err != nil {
			return nil, err
		}
	}

	events := []oprofile.EventConfig{}
	if rc.Kind != ProfNone {
		events = append(events, oprofile.EventConfig{Event: hpc.GlobalPowerEvents, Period: rc.Period})
		if rc.MissPeriod > 0 {
			events = append(events, oprofile.EventConfig{Event: hpc.BSQCacheReference, Period: rc.MissPeriod})
		}
	}

	res := &Result{Bench: spec.Name, Config: rc, Machine: machine}
	vmCfg := jvm.Config{HeapBytes: spec.HeapBytes}

	var session *core.Session
	var prof *oprofile.Profiler
	var vm *jvm.VM
	var proc *kernel.Process
	switch rc.Kind {
	case ProfNone:
		vm, proc, err = jvm.Launch(machine, prog, vmCfg)
	case ProfOprofile:
		prof, err = oprofile.Start(machine, oprofile.Config{Events: events})
		if err == nil {
			vm, proc, err = jvm.Launch(machine, prog, vmCfg)
		}
	case ProfVIProf:
		session, err = core.Start(machine, core.Config{
			Events:         events,
			CallGraphDepth: rc.CallGraphDepth,
			FullMaps:       rc.FullMaps,
			EagerMoveLog:   rc.EagerMoveLog,
			NoRecovery:     opt.NoRecovery,
		})
		if err == nil {
			vm, proc, err = session.LaunchJVM(prog, vmCfg)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %v", spec.Name, rc.Label(), err)
	}

	// Generous limit: 100x the calibrated base time catches runaways.
	limit := uint64(spec.BaseSeconds*opt.Scale*100+60) * cpu.ClockHz
	runLoop := machine.Kern.Run
	if opt.legacyRun {
		runLoop = machine.Kern.RunLegacy
	}
	if err := runLoop(limit); err != nil {
		return nil, fmt.Errorf("harness: %s/%s: %v", spec.Name, rc.Label(), err)
	}
	if !vm.Finished() {
		return nil, fmt.Errorf("harness: %s/%s: VM error: %v", spec.Name, rc.Label(), vm.Err())
	}

	// "We configure it to measure the execution time of the benchmarks
	// only": the clock when the benchmark process exits. On SMP the
	// wall clock is the furthest-ahead core.
	res.Cycles = machine.Core.Cycles()
	for _, c := range machine.Cores {
		if c.Cycles() > res.Cycles {
			res.Cycles = c.Cycles()
		}
	}
	res.Seconds = cpu.Seconds(res.Cycles)
	res.VMStats = vm.Stats()
	res.VM = vm
	res.Proc = proc

	switch rc.Kind {
	case ProfOprofile:
		prof.Shutdown(machine)
		res.DriverStats = prof.Driver.Stats()
	case ProfVIProf:
		session.Shutdown()
		res.DriverStats = session.Prof.Driver.Stats()
		if a, ok := session.Agents[proc.PID]; ok {
			res.AgentStats = a.Stats()
		}
		res.Session = session
	}
	if !opt.KeepSession {
		res.Machine, res.Session, res.VM, res.Proc = nil, nil, nil, nil
	}
	return res, nil
}

// Series is the paper's measurement protocol over repeated runs.
type Series struct {
	Bench   string
	Config  RunConfig
	Seconds []float64 // per-run, in run order
	Mean    float64   // trimmed mean (drop fastest+slowest)
}

// TrimmedMean drops the fastest and slowest values and averages the
// rest (with fewer than 3 runs it averages everything).
func TrimmedMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) > 2 {
		sorted = sorted[1 : len(sorted)-1]
	}
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return sum / float64(len(sorted))
}

// Repeat runs one cell `runs` times with distinct seeds, in parallel up
// to GOMAXPROCS, and aggregates with the trimmed mean.
func Repeat(spec workload.Spec, rc RunConfig, runs int, opt Options) (*Series, error) {
	if runs <= 0 {
		runs = 1
	}
	secs := make([]float64, runs)
	errs := make([]error, runs)
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opt
			o.Seed = opt.Seed + int64(i)*7919
			o.KeepSession = false
			r, err := RunOnce(spec, rc, o)
			if err != nil {
				errs[i] = err
				return
			}
			secs[i] = r.Seconds
		}(i)
	}
	wg.Wait()
	// Join every failure, not just the first: a multi-run breakage
	// should report each failing seed.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return &Series{
		Bench:   spec.Name,
		Config:  rc,
		Seconds: secs,
		Mean:    TrimmedMean(secs),
	}, nil
}
