package harness

import (
	"fmt"
	"testing"

	"viprof/internal/oprofile"
	"viprof/internal/workload"
)

// smpRun executes one profiled run and returns everything the
// differential checks compare: the measurement, the rendered report,
// and the raw sample-file bytes.
func smpRun(t *testing.T, spec workload.Spec, opt Options) (*Result, *oprofile.Report, []byte) {
	t.Helper()
	rc := RunConfig{Kind: ProfVIProf, Period: 45_000, MissPeriod: 90_000}
	opt.KeepSession = true
	r, err := RunOnce(spec, rc, opt)
	if err != nil {
		t.Fatal(err)
	}
	rep, _, err := r.Session.Report(
		r.Session.Images(r.VM), map[string]int{r.Proc.Name: r.Proc.PID})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := r.Machine.Kern.Disk().Read(oprofile.SampleFile)
	if err != nil {
		t.Fatal(err)
	}
	return r, rep, raw
}

// compareRuns asserts two runs are bit-for-bit identical through the
// whole pipeline: cycle count, every stats block, the raw persisted
// sample stream, and the report rows.
func compareRuns(t *testing.T, a, b *Result, repA, repB *oprofile.Report, rawA, rawB []byte) {
	t.Helper()
	if a.Cycles != b.Cycles {
		t.Errorf("cycles: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.DriverStats != b.DriverStats {
		t.Errorf("driver stats: %+v vs %+v", a.DriverStats, b.DriverStats)
	}
	if a.VMStats != b.VMStats {
		t.Errorf("vm stats: %+v vs %+v", a.VMStats, b.VMStats)
	}
	if a.AgentStats != b.AgentStats {
		t.Errorf("agent stats: %+v vs %+v", a.AgentStats, b.AgentStats)
	}
	if string(rawA) != string(rawB) {
		t.Errorf("sample files differ: %d vs %d bytes", len(rawA), len(rawB))
	}
	if repA.Totals != repB.Totals {
		t.Errorf("report totals: %v vs %v", repA.Totals, repB.Totals)
	}
	if len(repA.Rows) != len(repB.Rows) {
		t.Fatalf("report rows: %d vs %d", len(repA.Rows), len(repB.Rows))
	}
	for i := range repA.Rows {
		if repA.Rows[i] != repB.Rows[i] {
			t.Errorf("row %d: %+v vs %+v", i, repA.Rows[i], repB.Rows[i])
		}
	}
	if a.DriverStats.NMIs == 0 {
		t.Error("differential run sampled nothing — the comparison proved nothing")
	}
}

// The SMP scheduler at one core must be bit-for-bit the pre-SMP
// kernel: same cycle counts, same RNG consumption, same sample stream,
// same report. RunLegacy is the pre-SMP loop kept verbatim as the
// oracle; a quickcheck-style seed sweep pins the equivalence across
// distinct noise schedules rather than one lucky seed.
func TestSMPSingleCoreMatchesLegacyOracle(t *testing.T) {
	spec, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{3, 11, 29} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			smp, repS, rawS := smpRun(t, spec, Options{Scale: testScale, Seed: seed, Cores: 1})
			leg, repL, rawL := smpRun(t, spec, Options{Scale: testScale, Seed: seed, legacyRun: true})
			compareRuns(t, smp, leg, repS, repL, rawS, rawL)
		})
	}
}

// A fixed (seed, cores) pair must be exactly reproducible: the SMP
// scheduler, the coherency directory, and the concurrent shard drain
// may not leak host scheduling or map-iteration nondeterminism into
// the simulation. Two identical runs per core count, compared through
// the whole pipeline.
func TestSMPDeterminismSweep(t *testing.T) {
	spec, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{2, 4, 8} {
		cores := cores
		t.Run(fmt.Sprintf("cores=%d", cores), func(t *testing.T) {
			t.Parallel()
			opt := Options{Scale: testScale, Seed: 17, Cores: cores}
			a, repA, rawA := smpRun(t, spec, opt)
			b, repB, rawB := smpRun(t, spec, opt)
			compareRuns(t, a, b, repA, repB, rawA, rawB)
			if got := len(a.Machine.Cores); got != cores {
				t.Errorf("machine has %d cores, want %d", got, cores)
			}
		})
	}
}

// On a multi-core machine the per-CPU shard split must stay conserved
// end to end even in a clean run: per-CPU driver stats sum to the
// aggregate, the daemon's per-CPU aggregation matches each shard's
// logged count, and the report's per-CPU breakdown sums to its totals.
func TestSMPCleanRunPerCPUConservation(t *testing.T) {
	spec, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	r, rep, _ := smpRun(t, spec, Options{Scale: testScale, Seed: 5, Cores: 4})
	drv := r.Session.Prof.Driver
	loggedCPU := r.Session.Prof.Daemon.SamplesLoggedCPU()
	var sumNMI, sumLogged uint64
	for ci := 0; ci < drv.NumCPU(); ci++ {
		cs := drv.StatsCPU(ci)
		sumNMI += cs.NMIs
		sumLogged += cs.Logged
		if cs.Logged+cs.Dropped != cs.NMIs {
			t.Errorf("cpu%d driver conservation: logged %d + dropped %d != NMIs %d",
				ci, cs.Logged, cs.Dropped, cs.NMIs)
		}
		var agg uint64
		if ci < len(loggedCPU) {
			agg = loggedCPU[ci]
		}
		if agg+uint64(drv.ShardLen(ci)) != cs.Logged {
			t.Errorf("cpu%d daemon conservation: aggregated %d + buffered %d != logged %d",
				ci, agg, drv.ShardLen(ci), cs.Logged)
		}
	}
	ds := r.DriverStats
	if sumNMI != ds.NMIs || sumLogged != ds.Logged {
		t.Errorf("per-CPU stats (NMIs %d, logged %d) do not sum to aggregate (%d, %d)",
			sumNMI, sumLogged, ds.NMIs, ds.Logged)
	}
	for _, ev := range rep.Events {
		var cpuSum uint64
		for _, ct := range rep.PerCPU {
			cpuSum += ct.Counts[ev]
		}
		if cpuSum != rep.Totals[ev] {
			t.Errorf("report per-CPU breakdown for %v sums to %d, total is %d",
				ev, cpuSum, rep.Totals[ev])
		}
	}
	if ds.NMIs == 0 {
		t.Error("conservation test sampled nothing")
	}
}
