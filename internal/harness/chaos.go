package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"viprof/internal/core"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/jvm"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/workload"
)

// The chaos harness: run a complete profiled session while the kernel's
// fault injector attacks the persistence layer with a seeded schedule,
// then hand everything — driver, daemon, agent, fault stats, the report
// built from whatever survived on disk — to the invariant checks in
// internal/core/chaos_test.go. Each seed deterministically selects a
// scenario (which writer gets attacked, and how) and a fault schedule
// within it.

// ChaosScenario names the attack profile a seed selects.
type ChaosScenario int

// Scenarios, cycled by seed so any contiguous seed range covers all of
// them.
const (
	// ScenarioDaemonCrash kills the oprofiled daemon mid-flush.
	ScenarioDaemonCrash ChaosScenario = iota
	// ScenarioENOSPC starves every writer under var/ of disk space.
	ScenarioENOSPC
	// ScenarioTornMap tears the VM agent's epoch-map writes.
	ScenarioTornMap
	// ScenarioTornSamples tears (and slows) the daemon's sample flushes.
	ScenarioTornSamples
	// ScenarioVMKill crashes the VM process during a map write.
	ScenarioVMKill
	// ScenarioRenameFault attacks the atomic commit itself: the agent's
	// temp-then-rename map commits fail before the rename (orphan temp),
	// after it (durable but reported failed), or crash mid-commit.
	ScenarioRenameFault
	// ScenarioDirDamage damages directory listings under the map dir:
	// dropped dirents hide committed files, phantom dirents invent
	// orphan temps that do not exist.
	ScenarioDirDamage
	// ScenarioReadFault attacks the offline side: after the session
	// shuts down, the recovery pass's and the report's reads of profile
	// artifacts deliver seeded EIO (the write side all landed).
	ScenarioReadFault
	// ScenarioShardCrash kills the daemon on an SMP machine partway
	// through a multi-record flush, so only a subset of the per-CPU
	// shards reached disk. The invariants must hold per CPU: persisted
	// counts stay within each CPU's logged totals (no cross-CPU
	// misattribution) and the partial flush degrades loudly.
	ScenarioShardCrash
	numScenarios
)

// String names the scenario.
func (s ChaosScenario) String() string {
	switch s {
	case ScenarioDaemonCrash:
		return "daemon-crash"
	case ScenarioENOSPC:
		return "enospc"
	case ScenarioTornMap:
		return "torn-map"
	case ScenarioTornSamples:
		return "torn-samples"
	case ScenarioVMKill:
		return "vm-kill"
	case ScenarioRenameFault:
		return "rename-fault"
	case ScenarioDirDamage:
		return "dir-damage"
	case ScenarioReadFault:
		return "read-fault"
	case ScenarioShardCrash:
		return "shard-crash"
	default:
		return fmt.Sprintf("scenario-%d", int(s))
	}
}

// ScenarioOf maps a seed to its scenario.
func ScenarioOf(seed int64) ChaosScenario {
	s := seed % int64(numScenarios)
	if s < 0 {
		s += int64(numScenarios)
	}
	return ChaosScenario(s)
}

// ChaosPlan derives the deterministic fault schedule for a seed: the
// scenario picks the target path prefix and failure mix, the seed's
// private RNG picks the intensities. (ScenarioDirDamage attacks
// listings and ScenarioReadFault attacks offline reads, not writes, so
// their write-side plans are inert — use ScheduleOf for the full
// composed schedule.)
func ChaosPlan(seed int64) kernel.FaultPlan {
	return scenarioPlan(ScenarioOf(seed), seed)
}

func scenarioPlan(sc ChaosScenario, seed int64) kernel.FaultPlan {
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 1))
	plan := kernel.FaultPlan{Seed: seed}
	switch sc {
	case ScenarioDaemonCrash:
		plan.PathPrefix = "var/lib/oprofile/"
		plan.PCrash = 0.05 + 0.3*rng.Float64()
		plan.MaxFaults = 1
	case ScenarioENOSPC:
		plan.PathPrefix = "var/"
		plan.PENOSPC = 0.1 + 0.4*rng.Float64()
		plan.PEIO = 0.1 * rng.Float64()
		plan.MaxFaults = 2 + rng.Intn(6)
	case ScenarioTornMap:
		plan.PathPrefix = core.MapDir
		plan.PTorn = 0.2 + 0.5*rng.Float64()
		plan.MaxFaults = 1 + rng.Intn(5)
	case ScenarioTornSamples:
		plan.PathPrefix = "var/lib/oprofile/"
		plan.PTorn = 0.2 + 0.5*rng.Float64()
		plan.PLatency = 0.2 * rng.Float64()
		plan.MaxFaults = 2 + rng.Intn(6)
	case ScenarioVMKill:
		plan.PathPrefix = core.MapDir
		plan.PCrash = 0.1 + 0.4*rng.Float64()
		plan.MaxFaults = 1
	case ScenarioRenameFault:
		plan.PathPrefix = core.MapDir
		plan.PRenameBefore = 0.15 + 0.3*rng.Float64()
		plan.PRenameAfter = 0.1 + 0.2*rng.Float64()
		plan.PRenameCrash = 0.05 + 0.1*rng.Float64()
		plan.MaxFaults = 1 + rng.Intn(3)
	case ScenarioShardCrash:
		// Scripted, not probabilistic: crash the daemon on an exact
		// matched write a few records in, so on a multi-core machine
		// the crash lands between the per-CPU records of a flush and
		// leaves only a shard subset persisted.
		plan.PathPrefix = "var/lib/oprofile/"
		plan.Script = []kernel.FaultPoint{{Write: 1 + rng.Intn(6), Kind: kernel.FaultCrash}}
	}
	return plan
}

// scenarioListPlan derives ScenarioDirDamage's listing-damage schedule.
func scenarioListPlan(seed int64) kernel.ListFaultPlan {
	rng := rand.New(rand.NewSource(seed*0x2545F491 + 11))
	return kernel.ListFaultPlan{
		Seed:       seed,
		PathPrefix: core.MapDir,
		PDrop:      0.1 + 0.3*rng.Float64(),
		PPhantom:   0.05 + 0.2*rng.Float64(),
		MaxFaults:  1 + rng.Intn(4),
	}
}

// ChaosSchedule is a composed attack: one or more scenarios armed
// simultaneously, each with its own seeded plan (independent RNG
// streams — see the propose/note split in internal/kernel/fault.go for
// why composition cannot change what a single plan would inject).
type ChaosSchedule struct {
	Seed      int64
	Scenarios []ChaosScenario
	// Plans are the write/rename-side fault plans (one per write-side
	// scenario); ListPlan is ScenarioDirDamage's listing damage and
	// ReadPlan is ScenarioReadFault's offline-read EIO schedule, each
	// nil when its scenario is not drawn.
	Plans    []kernel.FaultPlan
	ListPlan *kernel.ListFaultPlan
	ReadPlan *kernel.ReadFaultPlan
	// Cores is the simulated machine's core count (0/1 = single-core).
	// Composed seeds draw it so every fault scenario also runs against
	// SMP machines; ScenarioShardCrash forces it multi-core.
	Cores int
}

// String names the composition, e.g. "enospc+rename-fault".
func (cs ChaosSchedule) String() string {
	if len(cs.Scenarios) == 0 {
		return "scripted"
	}
	names := make([]string, len(cs.Scenarios))
	for i, sc := range cs.Scenarios {
		names[i] = sc.String()
	}
	return strings.Join(names, "+")
}

// ScheduleOf maps a seed to its composed schedule. The first
// numScenarios seeds each run their scenario alone (so any sweep from
// seed 0 covers every scenario in isolation); later seeds draw 1-3
// distinct scenarios. Per-scenario plan seeds are derived from the run
// seed so a composed schedule's individual plans never share RNG
// streams.
func ScheduleOf(seed int64) ChaosSchedule {
	sched := ChaosSchedule{Seed: seed}
	var scens []ChaosScenario
	if seed >= 0 && seed < int64(numScenarios) {
		scens = []ChaosScenario{ChaosScenario(seed)}
	} else {
		rng := rand.New(rand.NewSource(seed*0x6C078965 + 7))
		n := 1 + rng.Intn(3)
		for _, p := range rng.Perm(int(numScenarios))[:n] {
			scens = append(scens, ChaosScenario(p))
		}
		// Core count composes with the fault mix: drawn after the
		// scenario picks so arming SMP never perturbs which scenarios a
		// seed selects.
		sched.Cores = 1 << rng.Intn(3)
	}
	for _, sc := range scens {
		if sc == ScenarioShardCrash && sched.Cores < 2 {
			// A shard-subset crash needs shards: force a multi-core run
			// (including the scenario's isolated low seed).
			sched.Cores = 4
		}
	}
	for i, sc := range scens {
		pseed := seed*31 + int64(i) + 1
		switch sc {
		case ScenarioDirDamage:
			lp := scenarioListPlan(pseed)
			sched.ListPlan = &lp
		case ScenarioReadFault:
			rp := ReadChaosPlan(pseed)
			sched.ReadPlan = &rp
		default:
			sched.Plans = append(sched.Plans, scenarioPlan(sc, pseed))
		}
	}
	sched.Scenarios = scens
	return sched
}

// ChaosResult is everything one chaos run produced, for the invariant
// checks.
type ChaosResult struct {
	Seed     int64
	Scenario ChaosScenario
	Schedule ChaosSchedule
	Plan     kernel.FaultPlan
	Faults   kernel.FaultStats
	// ListFaultsRecovery snapshots the listing-damage stats after the
	// recovery pass and before the report's own directory reads;
	// ListFaults is the final total. The difference is the damage the
	// report phase itself absorbed.
	ListFaultsRecovery, ListFaults kernel.ListFaultStats
	// Recovery is the startup recovery pass's decision record.
	Recovery *oprofile.RecoveryStats

	Machine *kernel.Machine
	Session *core.Session
	VM      *jvm.VM
	Proc    *kernel.Process
	// Cores is the machine's core count for this run.
	Cores int
	// VMKilled reports the VM process was crashed by fault injection
	// (so the workload legitimately did not finish).
	VMKilled bool

	Driver oprofile.DriverStats
	Daemon *oprofile.Daemon
	Agent  *core.VMAgent

	Report   *oprofile.Report
	Resolver *core.Resolver

	// ReadFaults counts injected offline-read failures (RunChaosRead
	// and composed schedules that drew ScenarioReadFault; zero
	// otherwise).
	ReadFaults kernel.ReadFaultStats

	// TraceStats is the VM's trace-cache counter snapshot, so the sweep
	// can prove its misattribution checks covered runs where fused
	// trace replay — and its invalidation under promotion and GC moves —
	// was actually active.
	TraceStats jvm.TraceStats
}

// RunChaos executes one full profiled session under the seed's
// composed fault schedule, runs the startup recovery pass over the
// crashed state, and builds the offline report from whatever survived
// on disk. scale multiplies the workload size (1.0 ≈ one simulated
// second).
func RunChaos(seed int64, scale float64) (*ChaosResult, error) {
	return RunChaosSchedule(seed, scale, ScheduleOf(seed))
}

// ReadChaosPlan derives the deterministic read-fault schedule for a
// seed: EIO on offline reads of profile artifacts (sample file, stats
// files, epoch code maps). The prefix deliberately excludes RVM.map —
// attacking inputs the Integrity section accounts for keeps the
// "every fault is visible" invariant checkable.
func ReadChaosPlan(seed int64) kernel.ReadFaultPlan {
	rng := rand.New(rand.NewSource(seed*0x5851F42D + 3))
	return kernel.ReadFaultPlan{
		Seed:       seed,
		PathPrefix: "var/lib/",
		PEIO:       0.1 + 0.4*rng.Float64(),
		MaxFaults:  1 + rng.Intn(4),
	}
}

// RunChaosRead runs a fault-free profiled session, then attacks the
// *offline* report assembly with the seed's read-fault schedule: the
// writes all land, but reading them back delivers seeded EIO. The
// salvage readers' contract under test is the mirror image of the write
// side's — an unreadable artifact degrades the report loudly (missing
// sample file, nil daemon stats, poisoned map epochs), never silently.
// The injector is disarmed before returning so callers can re-read the
// true disk.
func RunChaosRead(seed int64, scale float64) (*ChaosResult, error) {
	return RunChaosReadPlan(seed, scale, ReadChaosPlan(seed))
}

// RunChaosReadPlan is RunChaosRead with a caller-supplied read-fault
// plan (scripted EIO points) instead of the seed-derived one.
func RunChaosReadPlan(seed int64, scale float64, rplan kernel.ReadFaultPlan) (*ChaosResult, error) {
	r, err := RunChaosPlan(seed, scale, kernel.FaultPlan{Seed: seed})
	if err != nil {
		return nil, err
	}
	disk := r.Machine.Kern.Disk()
	disk.SetReadFaultInjector(rplan)
	rep, res, err := r.Session.Report(r.Session.Images(r.VM), map[string]int{r.Proc.Name: r.Proc.PID})
	r.ReadFaults = disk.ReadFaultStats()
	disk.ClearReadFaultInjector()
	if err != nil {
		return nil, fmt.Errorf("read-chaos seed %d: report: %v", seed, err)
	}
	r.Report, r.Resolver = rep, res
	return r, nil
}

// RunChaosPlan is RunChaos with a caller-supplied fault plan (scripted
// crash points, custom probabilities) instead of the seed-derived one.
func RunChaosPlan(seed int64, scale float64, plan kernel.FaultPlan) (*ChaosResult, error) {
	return RunChaosSchedule(seed, scale, ChaosSchedule{Seed: seed, Plans: []kernel.FaultPlan{plan}})
}

// RunChaosSchedule runs the full crash-and-recover cycle under a
// composed schedule: session + workload under the armed injectors,
// shutdown, the startup recovery pass (itself under the same
// injectors — recovery's own writes and renames can be struck), then
// the offline report over the recovered disk.
func RunChaosSchedule(seed int64, scale float64, sched ChaosSchedule) (*ChaosResult, error) {
	if scale <= 0 {
		scale = 1.0
	}
	spec := workload.Spec{
		Name:        "chaos",
		MainClass:   "chaos.Main",
		BaseSeconds: 1,
		Classes:     4,
		ColdPerHot:  2,
		HotMethods:  2,
		OuterIters:  150,
		InnerIters:  300,
		ArrayLen:    256,
		AllocEvery:  4,
		SurviveRing: 64,
		MemsetBytes: 512,
		WriteEvery:  8,
		HeapBytes:   128 << 10,
		Seed:        seed,
	}
	prog, err := workload.Build(spec, scale)
	if err != nil {
		return nil, err
	}
	machine := BuildMachine(sched.Cores, seed)
	session, err := core.Start(machine, core.Config{
		Events: []oprofile.EventConfig{{Event: hpc.GlobalPowerEvents, Period: 45_000}},
		// A small spill bound so flush-failure scenarios actually
		// exercise the framed spill protocol (the default bound is far
		// above what a chaos-scale backlog reaches).
		Daemon: oprofile.DaemonConfig{SpillMax: 16},
		// The chaos cycle stages its own crash and drives the recovery
		// pass explicitly below, under the armed injectors; the default
		// startup pass would only add pre-crash journal traffic.
		NoRecovery: true,
	})
	if err != nil {
		return nil, err
	}
	vm, proc, err := session.LaunchJVM(prog, jvm.Config{HeapBytes: spec.HeapBytes})
	if err != nil {
		return nil, err
	}
	// Arm the injectors only after launch, so session setup writes (none
	// today, but cheap insurance) cannot consume schedule randomness.
	machine.Kern.SetFaultInjectors(sched.Plans...)
	disk := machine.Kern.Disk()
	if sched.ListPlan != nil {
		disk.SetListFaultInjector(*sched.ListPlan)
	}

	limit := uint64(spec.BaseSeconds*scale*100+60) * cpu.ClockHz
	if err := machine.Kern.Run(limit); err != nil {
		return nil, fmt.Errorf("chaos seed %d: %v", seed, err)
	}
	killed := proc.Killed()
	if !vm.Finished() && !killed {
		return nil, fmt.Errorf("chaos seed %d: VM neither finished nor killed: %v", seed, vm.Err())
	}
	session.Shutdown()

	// ScenarioReadFault arms only now: the session's own writes all
	// landed, and the recovery pass plus the report absorb the EIOs.
	if sched.ReadPlan != nil {
		disk.SetReadFaultInjector(*sched.ReadPlan)
	}

	// The startup recovery pass, still under fire: its marker writes,
	// adoption renames, and merge writes face the same injectors, and
	// its directory scans see the damaged listings.
	rec, err := core.RunRecovery(machine, []int{proc.PID})
	if err != nil {
		return nil, fmt.Errorf("chaos seed %d: recovery: %v", seed, err)
	}
	listRec := disk.ListFaultStats()

	rep, res, err := session.Report(session.Images(vm), map[string]int{proc.Name: proc.PID})
	listAll := disk.ListFaultStats()
	readStats := disk.ReadFaultStats()
	disk.ClearListFaultInjector()
	disk.ClearReadFaultInjector()
	if err != nil {
		return nil, fmt.Errorf("chaos seed %d: report: %v", seed, err)
	}
	var plan kernel.FaultPlan
	if len(sched.Plans) == 1 {
		plan = sched.Plans[0]
	}
	return &ChaosResult{
		Seed:               seed,
		Scenario:           ScenarioOf(seed),
		Schedule:           sched,
		Plan:               plan,
		Faults:             machine.Kern.FaultStats(),
		ListFaultsRecovery: listRec,
		ListFaults:         listAll,
		Recovery:           rec,
		Machine:            machine,
		Session:            session,
		VM:                 vm,
		Proc:               proc,
		Cores:              len(machine.Cores),
		VMKilled:           killed,
		Driver:             session.Prof.Driver.Stats(),
		Daemon:             session.Prof.Daemon,
		Agent:              session.Agents[proc.PID],
		Report:             rep,
		Resolver:           res,
		ReadFaults:         readStats,
		TraceStats:         vm.TraceStats(),
	}, nil
}
