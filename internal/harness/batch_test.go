package harness

import (
	"testing"

	"viprof/internal/oprofile"
	"viprof/internal/workload"
)

// Batched execution must be indistinguishable from per-op execution
// through the entire stack: a profiled DaCapo run must retire the same
// cycle count, log the identical sample stream, and produce the same
// report rows whether or not the event-horizon engine is enabled.
func TestBatchedRunBitForBit(t *testing.T) {
	spec, err := workload.ByName("fop")
	if err != nil {
		t.Fatal(err)
	}
	rc := RunConfig{Kind: ProfVIProf, Period: 45_000, MissPeriod: 90_000}
	run := func(noBatch bool) (*Result, *oprofile.Report, []byte) {
		r, err := RunOnce(spec, rc, Options{
			Scale: testScale, Seed: 11, KeepSession: true, NoBatch: noBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, _, err := r.Session.Report(
			r.Session.Images(r.VM), map[string]int{r.Proc.Name: r.Proc.PID})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := r.Machine.Kern.Disk().Read(oprofile.SampleFile)
		if err != nil {
			t.Fatal(err)
		}
		return r, rep, raw
	}
	batched, repB, rawB := run(false)
	perop, repP, rawP := run(true)

	if batched.Cycles != perop.Cycles {
		t.Errorf("cycles: batched %d vs per-op %d", batched.Cycles, perop.Cycles)
	}
	if batched.DriverStats != perop.DriverStats {
		t.Errorf("driver stats: %+v vs %+v", batched.DriverStats, perop.DriverStats)
	}
	if batched.VMStats != perop.VMStats {
		t.Errorf("vm stats: %+v vs %+v", batched.VMStats, perop.VMStats)
	}
	if batched.AgentStats != perop.AgentStats {
		t.Errorf("agent stats: %+v vs %+v", batched.AgentStats, perop.AgentStats)
	}
	// The raw sample file is the strongest check: every logged sample —
	// PC, context, epoch tag — byte for byte.
	if string(rawB) != string(rawP) {
		t.Errorf("sample files differ: %d vs %d bytes", len(rawB), len(rawP))
	}
	if repB.Totals != repP.Totals {
		t.Errorf("report totals: %v vs %v", repB.Totals, repP.Totals)
	}
	if len(repB.Rows) != len(repP.Rows) {
		t.Fatalf("report rows: %d vs %d", len(repB.Rows), len(repP.Rows))
	}
	for i := range repB.Rows {
		if repB.Rows[i] != repP.Rows[i] {
			t.Errorf("row %d: %+v vs %+v", i, repB.Rows[i], repP.Rows[i])
		}
	}
	// Sanity: the run actually sampled and actually batched.
	if batched.DriverStats.NMIs == 0 {
		t.Error("determinism test ran without samples")
	}
	if !batched.Machine.Core.Batching() || perop.Machine.Core.Batching() {
		t.Error("NoBatch option not plumbed through")
	}
}

// The memory-operand batch path must be just as invisible: a workload
// dominated by data traffic — arraycopy intrinsics, memset fills, GC
// copy sweeps, kernel write copies, array read-modify-write loops —
// must produce identical cycles, sample-file bytes, and report rows
// whether memory ops stream through the bulk cache-replay engine or
// the precise per-op path.
func TestMemBatchBitForBit(t *testing.T) {
	spec := workload.Spec{
		Name: "membatch", Suite: "dacapo", MainClass: "org.membatch.Main",
		BaseSeconds: 1, Classes: 4, ColdPerHot: 2, HotMethods: 2,
		OuterIters: 60, InnerIters: 80, ArrayLen: 8192, AllocEvery: 16,
		SurviveRing: 8, MemsetBytes: 12 << 10, CopyElems: 3000,
		WriteEvery: 3, HeapBytes: 8 << 20, Seed: 7,
	}
	rc := RunConfig{Kind: ProfVIProf, Period: 45_000, MissPeriod: 90_000}
	run := func(noBatch bool) (*Result, *oprofile.Report, []byte) {
		r, err := RunOnce(spec, rc, Options{
			Scale: 0.5, Seed: 13, KeepSession: true, NoBatch: noBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, _, err := r.Session.Report(
			r.Session.Images(r.VM), map[string]int{r.Proc.Name: r.Proc.PID})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := r.Machine.Kern.Disk().Read(oprofile.SampleFile)
		if err != nil {
			t.Fatal(err)
		}
		return r, rep, raw
	}
	batched, repB, rawB := run(false)
	perop, repP, rawP := run(true)

	if batched.Cycles != perop.Cycles {
		t.Errorf("cycles: batched %d vs per-op %d", batched.Cycles, perop.Cycles)
	}
	if batched.DriverStats != perop.DriverStats {
		t.Errorf("driver stats: %+v vs %+v", batched.DriverStats, perop.DriverStats)
	}
	if batched.VMStats != perop.VMStats {
		t.Errorf("vm stats: %+v vs %+v", batched.VMStats, perop.VMStats)
	}
	if batched.AgentStats != perop.AgentStats {
		t.Errorf("agent stats: %+v vs %+v", batched.AgentStats, perop.AgentStats)
	}
	if string(rawB) != string(rawP) {
		t.Errorf("sample files differ: %d vs %d bytes", len(rawB), len(rawP))
	}
	if repB.Totals != repP.Totals {
		t.Errorf("report totals: %v vs %v", repB.Totals, repP.Totals)
	}
	if len(repB.Rows) != len(repP.Rows) {
		t.Fatalf("report rows: %d vs %d", len(repB.Rows), len(repP.Rows))
	}
	for i := range repB.Rows {
		if repB.Rows[i] != repP.Rows[i] {
			t.Errorf("row %d: %+v vs %+v", i, repB.Rows[i], repP.Rows[i])
		}
	}
	if batched.DriverStats.NMIs == 0 {
		t.Error("determinism test ran without samples")
	}
	// The workload must actually exercise the data-heavy paths it is
	// meant to pin down: libc memcpy (arraycopy) and memset rows.
	if _, ok := repB.Find("memcpy"); !ok {
		t.Error("no memcpy row: arraycopy traffic missing from report")
	}
	if _, ok := repB.Find("memset"); !ok {
		t.Error("no memset row: fill traffic missing from report")
	}
}
