package harness

import (
	"bytes"
	"fmt"
	"io"

	"viprof/internal/core"
	"viprof/internal/oprofile"
	"viprof/internal/workload"
)

// Figure 2's four profiling cells, in the paper's legend order.
func Figure2Configs() []RunConfig {
	return []RunConfig{
		{Kind: ProfOprofile, Period: 90_000, Noise: true},
		{Kind: ProfVIProf, Period: 45_000, Noise: true},
		{Kind: ProfVIProf, Period: 90_000, Noise: true},
		{Kind: ProfVIProf, Period: 450_000, Noise: true},
	}
}

// Fig3 is the base-execution-time table (paper Figure 3).
type Fig3 struct {
	Scale float64
	Rows  []Fig3Row
}

// Fig3Row is one benchmark's base time.
type Fig3Row struct {
	Bench     string
	Seconds   float64 // measured (trimmed mean)
	PaperSecs float64 // Figure 3's value, scaled
}

// Figure3 measures base (unprofiled) execution time for the whole
// suite.
func Figure3(scale float64, runs int, seed int64) (*Fig3, error) {
	fig := &Fig3{Scale: scale}
	var sum, paperSum float64
	for _, spec := range workload.Suite() {
		s, err := Repeat(spec, RunConfig{Kind: ProfNone, Noise: true}, runs,
			Options{Scale: scale, Seed: seed})
		if err != nil {
			return nil, err
		}
		fig.Rows = append(fig.Rows, Fig3Row{
			Bench:     spec.Name,
			Seconds:   s.Mean,
			PaperSecs: spec.BaseSeconds * scale,
		})
		sum += s.Mean
		paperSum += spec.BaseSeconds * scale
	}
	fig.Rows = append(fig.Rows, Fig3Row{
		Bench:     "Average",
		Seconds:   sum / float64(len(workload.Suite())),
		PaperSecs: paperSum / float64(len(workload.Suite())),
	})
	return fig, nil
}

// Format renders the table like the paper's Figure 3, with the
// calibration target alongside.
func (f *Fig3) Format(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Figure 3: base execution time in seconds (scale %.2f)\n", f.Scale); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %10s %12s\n", "Benchmark", "Base time", "Paper value")
	for _, r := range f.Rows {
		fmt.Fprintf(w, "%-12s %10.2f %12.2f\n", r.Bench, r.Seconds, r.PaperSecs)
	}
	return nil
}

// Fig2 is the profiling-overhead chart (paper Figure 2): slowdown
// relative to base per benchmark per configuration.
type Fig2 struct {
	Scale    float64
	Runs     int
	Configs  []RunConfig
	Benches  []string
	Base     map[string]float64            // bench -> base seconds
	Slowdown map[string]map[string]float64 // bench -> config label -> slowdown
}

// Figure2 runs the full overhead experiment.
func Figure2(scale float64, runs int, seed int64) (*Fig2, error) {
	return figure2(workload.Suite(), scale, runs, seed)
}

// Figure2Subset runs the overhead experiment on named benchmarks only
// (tests and quick looks).
func Figure2Subset(names []string, scale float64, runs int, seed int64) (*Fig2, error) {
	var specs []workload.Spec
	for _, n := range names {
		s, err := workload.ByName(n)
		if err != nil {
			return nil, err
		}
		specs = append(specs, s)
	}
	return figure2(specs, scale, runs, seed)
}

func figure2(specs []workload.Spec, scale float64, runs int, seed int64) (*Fig2, error) {
	fig := &Fig2{
		Scale:    scale,
		Runs:     runs,
		Configs:  Figure2Configs(),
		Base:     make(map[string]float64),
		Slowdown: make(map[string]map[string]float64),
	}
	for _, spec := range specs {
		fig.Benches = append(fig.Benches, spec.Name)
		base, err := Repeat(spec, RunConfig{Kind: ProfNone, Noise: true}, runs,
			Options{Scale: scale, Seed: seed})
		if err != nil {
			return nil, err
		}
		fig.Base[spec.Name] = base.Mean
		fig.Slowdown[spec.Name] = make(map[string]float64)
		for _, rc := range fig.Configs {
			s, err := Repeat(spec, rc, runs, Options{Scale: scale, Seed: seed})
			if err != nil {
				return nil, err
			}
			fig.Slowdown[spec.Name][rc.Label()] = s.Mean / base.Mean
		}
	}
	return fig, nil
}

// AverageSlowdown returns the mean slowdown of one configuration
// across all benchmarks.
func (f *Fig2) AverageSlowdown(label string) float64 {
	var sum float64
	var n int
	for _, b := range f.Benches {
		if v, ok := f.Slowdown[b][label]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Format renders the slowdown table (the paper draws bars; the numbers
// are the same data).
func (f *Fig2) Format(w io.Writer) error {
	fmt.Fprintf(w, "Figure 2: slowdown vs base (scale %.2f, %d runs, trimmed mean)\n", f.Scale, f.Runs)
	fmt.Fprintf(w, "%-12s", "benchmark")
	for _, rc := range f.Configs {
		fmt.Fprintf(w, "%12s", rc.Label())
	}
	fmt.Fprintln(w)
	for _, b := range f.Benches {
		fmt.Fprintf(w, "%-12s", b)
		for _, rc := range f.Configs {
			fmt.Fprintf(w, "%12.3f", f.Slowdown[b][rc.Label()])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-12s", "Average")
	for _, rc := range f.Configs {
		fmt.Fprintf(w, "%12.3f", f.AverageSlowdown(rc.Label()))
	}
	fmt.Fprintln(w)
	return nil
}

// Fig1 is the case-study report pair (paper Figure 1): the same
// benchmark profiled by VIProf (methods across all layers) and by
// plain OProfile (black boxes).
type Fig1 struct {
	VIProf   *oprofile.Report
	OProfile *oprofile.Report
	// Rendered holds both reports formatted as in the paper.
	Rendered string
}

// Figure1 runs DaCapo ps twice — once under VIProf, once under plain
// OProfile — with both hardware events armed, and renders the
// side-by-side reports.
func Figure1(scale float64, seed int64, maxRows int) (*Fig1, error) {
	spec, err := workload.ByName("ps")
	if err != nil {
		return nil, err
	}
	// Upper half: VIProf.
	vipRes, err := RunOnce(spec, RunConfig{
		Kind: ProfVIProf, Period: 90_000, MissPeriod: 6_000, Noise: true,
	}, Options{Scale: scale, Seed: seed, KeepSession: true})
	if err != nil {
		return nil, err
	}
	s := vipRes.Session
	vipRep, _, err := s.Report(s.Images(vipRes.VM), map[string]int{vipRes.Proc.Name: vipRes.Proc.PID})
	if err != nil {
		return nil, err
	}

	// Lower half: plain OProfile, identical benchmark setup.
	opRes, err := RunOnce(spec, RunConfig{
		Kind: ProfOprofile, Period: 90_000, MissPeriod: 6_000, Noise: true,
	}, Options{Scale: scale, Seed: seed, KeepSession: true})
	if err != nil {
		return nil, err
	}
	opImages := core.StandardImages(opRes.Machine, opRes.VM)
	opRep, err := oprofile.Opreport(opRes.Machine.Kern.Disk(), opImages, s.Events())
	if err != nil {
		return nil, err
	}

	var buf bytes.Buffer
	fmt.Fprintf(&buf, "Figure 1: DaCapo ps, events GLOBAL_POWER_EVENTS (time) and BSQ_CACHE_REFERENCE (L2 misses)\n\n")
	fmt.Fprintf(&buf, "--- VIProf ---\n")
	if err := oprofile.Format(&buf, vipRep, maxRows); err != nil {
		return nil, err
	}
	fmt.Fprintf(&buf, "\n--- Oprofile ---\n")
	if err := oprofile.Format(&buf, opRep, maxRows); err != nil {
		return nil, err
	}
	return &Fig1{VIProf: vipRep, OProfile: opRep, Rendered: buf.String()}, nil
}

// Activity is the reproduction's internals table: per-benchmark VM and
// profiler activity under VIProf at the 90K median frequency. It has no
// direct counterpart figure in the paper, but it documents the
// quantities the paper's §4.3 explanations appeal to (compile counts,
// GC/epoch counts, map-write volume).
type Activity struct {
	Scale float64
	Rows  []ActivityRow
}

// ActivityRow is one benchmark's internals.
type ActivityRow struct {
	Bench       string
	Seconds     float64
	Compiles    int
	OptCompiles int
	OSRs        int
	Epochs      int
	MapsWritten int
	MapBytes    uint64
	Samples     uint64
	JITShare    float64 // fraction of logged samples in JIT code
}

// ActivityTable runs the suite once under VIProf 90K and collects the
// internals.
func ActivityTable(scale float64, seed int64) (*Activity, error) {
	act := &Activity{Scale: scale}
	rc := RunConfig{Kind: ProfVIProf, Period: 90_000, Noise: true}
	for _, spec := range workload.Suite() {
		r, err := RunOnce(spec, rc, Options{Scale: scale, Seed: seed})
		if err != nil {
			return nil, err
		}
		row := ActivityRow{
			Bench:       spec.Name,
			Seconds:     r.Seconds,
			Compiles:    r.VMStats.BaselineCompiles,
			OptCompiles: r.VMStats.OptCompiles,
			OSRs:        r.VMStats.OSRs,
			Epochs:      r.VMStats.Collections,
			MapsWritten: r.AgentStats.MapsWritten,
			MapBytes:    r.AgentStats.MapBytes,
			Samples:     r.DriverStats.Logged,
		}
		if r.DriverStats.Logged > 0 {
			row.JITShare = float64(r.DriverStats.JITSamples) / float64(r.DriverStats.Logged)
		}
		act.Rows = append(act.Rows, row)
	}
	return act, nil
}

// Format renders the activity table.
func (a *Activity) Format(w io.Writer) error {
	fmt.Fprintf(w, "Activity under VIProf 90K (scale %.2f)\n", a.Scale)
	fmt.Fprintf(w, "%-12s %8s %8s %5s %5s %7s %6s %9s %8s %8s\n",
		"benchmark", "seconds", "compiles", "opt", "OSR", "epochs", "maps", "mapbytes", "samples", "jit%")
	for _, r := range a.Rows {
		fmt.Fprintf(w, "%-12s %8.2f %8d %5d %5d %7d %6d %9d %8d %7.1f%%\n",
			r.Bench, r.Seconds, r.Compiles, r.OptCompiles, r.OSRs, r.Epochs,
			r.MapsWritten, r.MapBytes, r.Samples, 100*r.JITShare)
	}
	return nil
}
