package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"viprof/internal/fleet"
	"viprof/internal/kernel"
)

// The fleet chaos harness: run a full multi-host collection session
// while seeded fault plans attack both the network (drop, duplicate,
// reorder, latency, partition) and the persistence layer under
// var/fleet (the disk/rename/read/list scenario family from chaos.go,
// retargeted at the collector journal, the spill files, and the
// snapshot commit), then hand everything to the conservation invariants
// in fleet_chaos_test.go.

// FleetScenario names one attack profile in the fleet composition set.
type FleetScenario int

// Fleet scenarios: five network attacks plus the fleet-path analogues
// of the single-host disk scenarios.
const (
	// FleetNetDrop loses a fraction of datagrams (deltas and acks).
	FleetNetDrop FleetScenario = iota
	// FleetNetDup duplicates datagrams; idempotent replay must absorb.
	FleetNetDup
	// FleetNetReorder delays datagrams past later traffic.
	FleetNetReorder
	// FleetNetLatency injects bounded latency spikes (never enough to
	// trip the ack timeout on their own).
	FleetNetLatency
	// FleetNetPartition opens full-fleet partition windows; long draws
	// outlast the retry budget and force host-side spills.
	FleetNetPartition
	// FleetCollectorCrash crashes the collector during a journal append
	// (supervisor restart + journal replay under test).
	FleetCollectorCrash
	// FleetENOSPC starves every fleet writer of disk space.
	FleetENOSPC
	// FleetTornJournal tears collector journal appends.
	FleetTornJournal
	// FleetTornSpill tears host spill writes (a parked delta's durable
	// copy is damaged — the gap must poison loudly).
	FleetTornSpill
	// FleetSenderKill crashes a host during a spill write.
	FleetSenderKill
	// FleetRenameSnapshot attacks the aggregate snapshot's atomic
	// commit (fail-before, fail-after, crash mid-commit).
	FleetRenameSnapshot
	// FleetDirDamage damages spill-directory listings (dropped and
	// phantom dirents during integrity's discovery scan).
	FleetDirDamage
	// FleetReadFault delivers seeded EIO on reads under var/fleet —
	// journal replay at restart, and every integrity read-back.
	FleetReadFault
	// FleetShardKill crashes collector shard processes during journal
	// appends — failover handoff plus supervisor restart under test.
	FleetShardKill
	// FleetCompactKill enables online compaction and crashes the
	// compactord daemon mid-pass (tmp writes, renames, the manifest
	// commit itself) — the LSM crash-safety discipline under test.
	FleetCompactKill
	// FleetMapPartition opens a partition window over the map
	// replication phase (the first seqs every host sends), forcing
	// code-map retries through failover routing.
	FleetMapPartition
	numFleetScenarios
)

// String names the scenario.
func (s FleetScenario) String() string {
	switch s {
	case FleetNetDrop:
		return "net-drop"
	case FleetNetDup:
		return "net-dup"
	case FleetNetReorder:
		return "net-reorder"
	case FleetNetLatency:
		return "net-latency"
	case FleetNetPartition:
		return "net-partition"
	case FleetCollectorCrash:
		return "collector-crash"
	case FleetENOSPC:
		return "fleet-enospc"
	case FleetTornJournal:
		return "torn-journal"
	case FleetTornSpill:
		return "torn-spill"
	case FleetSenderKill:
		return "sender-kill"
	case FleetRenameSnapshot:
		return "rename-snapshot"
	case FleetDirDamage:
		return "fleet-dir-damage"
	case FleetReadFault:
		return "fleet-read-fault"
	case FleetShardKill:
		return "shard-kill"
	case FleetCompactKill:
		return "compact-kill"
	case FleetMapPartition:
		return "map-partition"
	default:
		return fmt.Sprintf("fleet-scenario-%d", int(s))
	}
}

// fleetNetPlan folds one network scenario into the (single) net plan.
func fleetNetPlan(plan *fleet.NetFaultPlan, sc FleetScenario, seed int64) {
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 1))
	switch sc {
	case FleetNetDrop:
		plan.PDrop = 0.02 + 0.10*rng.Float64()
		plan.MaxFaults = 4 + rng.Intn(12)
	case FleetNetDup:
		plan.PDup = 0.2 + 0.3*rng.Float64()
	case FleetNetReorder:
		plan.PReorder = 0.2 + 0.3*rng.Float64()
	case FleetNetLatency:
		plan.PLatency = 0.2 + 0.3*rng.Float64()
	case FleetNetPartition:
		// One or two windows; a long draw (past the ~10M-cycle retry
		// budget) forces spills, a short one heals in time.
		n := 1 + rng.Intn(2)
		at := uint64(100_000 + rng.Intn(2_000_000))
		for i := 0; i < n; i++ {
			width := uint64(800_000 + rng.Intn(14_000_000))
			plan.Partitions = append(plan.Partitions, fleet.Partition{
				Host: fleet.PartitionAll, Start: at, End: at + width,
			})
			at += width + uint64(500_000+rng.Intn(2_000_000))
		}
	case FleetMapPartition:
		// A window opening almost immediately, while the hosts are still
		// replicating their epoch code maps (the first seqs, generated in
		// the first ~100k cycles) — map frames retry through it and land
		// after it heals, exercising replication under partition.
		start := uint64(20_000 + rng.Intn(60_000))
		width := uint64(400_000 + rng.Intn(1_600_000))
		plan.Partitions = append(plan.Partitions, fleet.Partition{
			Host: fleet.PartitionAll, Start: start, End: start + width,
		})
	}
}

// fleetDiskPlan derives one disk scenario's write/rename-side plan.
// Fleet plans never use PLatency: a disk-latency stall advances the
// global clock, which can expire ack deadlines and degrade a run with
// zero destructive faults — exactly the ambiguity the destructive ⇒
// degraded invariant forbids.
func fleetDiskPlan(sc FleetScenario, seed int64) kernel.FaultPlan {
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 1))
	plan := kernel.FaultPlan{Seed: seed}
	switch sc {
	case FleetCollectorCrash:
		plan.PathPrefix = fleet.JournalPrefix
		plan.PCrash = 0.02 + 0.08*rng.Float64()
		plan.MaxFaults = 1 + rng.Intn(2)
	case FleetShardKill:
		plan.PathPrefix = fleet.JournalPrefix
		plan.PCrash = 0.05 + 0.15*rng.Float64()
		plan.MaxFaults = 2 + rng.Intn(3)
	case FleetCompactKill:
		plan.PathPrefix = fleet.GenDir + "/"
		plan.PCrash = 0.1 + 0.3*rng.Float64()
		plan.PRenameCrash = 0.1 + 0.2*rng.Float64()
		plan.MaxFaults = 1 + rng.Intn(2)
	case FleetENOSPC:
		plan.PathPrefix = fleet.FleetDir + "/"
		plan.PENOSPC = 0.05 + 0.25*rng.Float64()
		plan.PEIO = 0.05 * rng.Float64()
		plan.MaxFaults = 2 + rng.Intn(6)
	case FleetTornJournal:
		plan.PathPrefix = fleet.JournalPrefix
		plan.PTorn = 0.1 + 0.4*rng.Float64()
		plan.MaxFaults = 2 + rng.Intn(5)
	case FleetTornSpill:
		plan.PathPrefix = fleet.FleetDir + "/host"
		plan.PTorn = 0.3 + 0.5*rng.Float64()
		plan.MaxFaults = 1 + rng.Intn(4)
	case FleetSenderKill:
		plan.PathPrefix = fleet.FleetDir + "/host"
		plan.PCrash = 0.2 + 0.4*rng.Float64()
		plan.MaxFaults = 1
	case FleetRenameSnapshot:
		plan.PathPrefix = fleet.AggregateFile
		plan.PRenameBefore = 0.2 + 0.3*rng.Float64()
		plan.PRenameAfter = 0.1 + 0.2*rng.Float64()
		plan.PRenameCrash = 0.05 + 0.15*rng.Float64()
		plan.MaxFaults = 1 + rng.Intn(3)
	}
	return plan
}

// fleetListPlan derives FleetDirDamage's listing-damage schedule.
func fleetListPlan(seed int64) kernel.ListFaultPlan {
	rng := rand.New(rand.NewSource(seed*0x2545F491 + 11))
	return kernel.ListFaultPlan{
		Seed:       seed,
		PathPrefix: fleet.FleetDir + "/host",
		PDrop:      0.1 + 0.3*rng.Float64(),
		PPhantom:   0.05 + 0.2*rng.Float64(),
		MaxFaults:  1 + rng.Intn(4),
	}
}

// fleetReadPlan derives FleetReadFault's EIO schedule: reads under
// var/fleet fail — journal replay during supervisor restarts and every
// offline integrity read-back alike.
func fleetReadPlan(seed int64) kernel.ReadFaultPlan {
	rng := rand.New(rand.NewSource(seed*0x5851F42D + 3))
	return kernel.ReadFaultPlan{
		Seed:       seed,
		PathPrefix: fleet.FleetDir + "/",
		PEIO:       0.05 + 0.25*rng.Float64(),
		MaxFaults:  1 + rng.Intn(3),
	}
}

// FleetSchedule is a composed fleet attack: network faults folded into
// one net plan, disk plans armed simultaneously, plus optional listing
// and read damage.
type FleetSchedule struct {
	Seed      int64
	Scenarios []FleetScenario
	Net       fleet.NetFaultPlan
	Plans     []kernel.FaultPlan
	ListPlan  *kernel.ListFaultPlan
	ReadPlan  *kernel.ReadFaultPlan
	// Cores sizes the simulated machine (0 = 1); shard processes pin
	// across them.
	Cores int
	// CompactEveryCycles enables the online compactor daemon (0 = off).
	CompactEveryCycles uint64
}

// String names the composition, e.g. "net-drop+torn-journal".
func (fs FleetSchedule) String() string {
	if len(fs.Scenarios) == 0 {
		return "scripted"
	}
	names := make([]string, len(fs.Scenarios))
	for i, sc := range fs.Scenarios {
		names[i] = sc.String()
	}
	return strings.Join(names, "+")
}

// FleetScheduleOf maps a seed to its composed schedule. The first
// numFleetScenarios seeds run each scenario alone (a sweep from seed 0
// covers every scenario in isolation); later seeds draw 1-3 distinct
// scenarios, freely mixing network and disk attacks. Per-scenario plan
// seeds are derived from the run seed so composed plans never share RNG
// streams.
func FleetScheduleOf(seed int64) FleetSchedule {
	sched := FleetSchedule{Seed: seed, Net: fleet.NetFaultPlan{Seed: seed*0x6C078965 + 13}}
	var scens []FleetScenario
	rng := rand.New(rand.NewSource(seed*0x6C078965 + 7))
	if seed >= 0 && seed < int64(numFleetScenarios) {
		scens = []FleetScenario{FleetScenario(seed)}
	} else {
		n := 1 + rng.Intn(3)
		for _, p := range rng.Perm(int(numFleetScenarios))[:n] {
			scens = append(scens, FleetScenario(p))
		}
	}
	// Machine shape: isolated sweeps and composed draws alike cover
	// single-core and SMP, and roughly half of all runs compact online
	// while under attack.
	sched.Cores = []int{1, 2, 4}[rng.Intn(3)]
	if rng.Intn(2) == 0 {
		sched.CompactEveryCycles = uint64(200_000 + rng.Intn(600_000))
	}
	for i, sc := range scens {
		pseed := seed*31 + int64(i) + 1
		switch {
		case sc <= FleetNetPartition || sc == FleetMapPartition:
			fleetNetPlan(&sched.Net, sc, pseed)
		case sc == FleetDirDamage:
			lp := fleetListPlan(pseed)
			sched.ListPlan = &lp
		case sc == FleetReadFault:
			rp := fleetReadPlan(pseed)
			sched.ReadPlan = &rp
		default:
			if sc == FleetCompactKill && sched.CompactEveryCycles == 0 {
				// The attack needs a compactor to strike.
				sched.CompactEveryCycles = uint64(200_000 + rng.Intn(600_000))
			}
			sched.Plans = append(sched.Plans, fleetDiskPlan(sc, pseed))
		}
	}
	sched.Scenarios = scens
	return sched
}

// FleetChaosResult is everything one fleet chaos run produced.
type FleetChaosResult struct {
	Seed     int64
	Schedule FleetSchedule
	Result   *fleet.FleetResult
	// Injector accounting: disk write/rename faults, listing damage,
	// and read EIOs (the network's own counters are in Result.Net).
	Faults     kernel.FaultStats
	ListFaults kernel.ListFaultStats
	ReadFaults kernel.ReadFaultStats
}

// TotalDestructive sums every injected event that can destroy or hide
// state: disk faults (minus pure latency), network drops and partition
// rejections, read EIOs, and listing damage. The conservation sweep's
// contract: zero here means a bit-perfect run, and any degradation
// anywhere implies this is positive.
func (r *FleetChaosResult) TotalDestructive() uint64 {
	return r.Faults.Destructive() + r.Result.Net.Destructive() +
		r.ReadFaults.EIO + r.ListFaults.Dropped + r.ListFaults.Phantoms
}

// RunFleetChaos executes one fleet run under the seed's composed
// schedule: hosts and workload sizes drawn from the seed, all injectors
// armed before the machine starts (read faults included — supervisor
// journal replays run under fire), integrity assembled from whatever
// survived.
func RunFleetChaos(seed int64) (*FleetChaosResult, error) {
	return RunFleetChaosSchedule(seed, FleetScheduleOf(seed))
}

// RunFleetChaosSchedule is RunFleetChaos with a caller-supplied
// schedule (scripted fault points, custom partitions).
func RunFleetChaosSchedule(seed int64, sched FleetSchedule) (*FleetChaosResult, error) {
	rng := rand.New(rand.NewSource(seed*0x6C078965 + 29))
	cfg := fleet.FleetConfig{
		Hosts:         8 + rng.Intn(3),
		DeltasPerHost: 6 + rng.Intn(5),
		Seed:          seed,
		Net:           sched.Net,
	}
	cfg.Collector.CompactEveryCycles = sched.CompactEveryCycles
	cores := sched.Cores
	if cores <= 0 {
		cores = 1
	}
	machine := BuildMachine(cores, seed)
	machine.Kern.SetFaultInjectors(sched.Plans...)
	disk := machine.Kern.Disk()
	if sched.ListPlan != nil {
		disk.SetListFaultInjector(*sched.ListPlan)
	}
	if sched.ReadPlan != nil {
		disk.SetReadFaultInjector(*sched.ReadPlan)
	}
	res, err := fleet.RunFleet(machine, cfg)
	listStats := disk.ListFaultStats()
	readStats := disk.ReadFaultStats()
	disk.ClearListFaultInjector()
	disk.ClearReadFaultInjector()
	if err != nil {
		return nil, fmt.Errorf("fleet chaos seed %d: %v", seed, err)
	}
	return &FleetChaosResult{
		Seed:       seed,
		Schedule:   sched,
		Result:     res,
		Faults:     machine.Kern.FaultStats(),
		ListFaults: listStats,
		ReadFaults: readStats,
	}, nil
}
