package oprofile

import (
	"bytes"
	"strings"
	"testing"

	"viprof/internal/hpc"
	"viprof/internal/image"
)

func viewsTestReport() (*Report, map[Key]uint64, Resolver) {
	b := image.NewBuilder("lib.so")
	fOff := b.Add("f", 64)
	gOff := b.Add("g", 64)
	img, _ := b.Image()
	res := &ELFResolver{Images: map[string]*image.Image{"lib.so": img}}
	counts := map[Key]uint64{
		{Event: hpc.GlobalPowerEvents, Image: "lib.so", Off: fOff}:     10,
		{Event: hpc.GlobalPowerEvents, Image: "lib.so", Off: fOff + 4}: 5,
		{Event: hpc.GlobalPowerEvents, Image: "lib.so", Off: gOff}:     3,
		{Event: hpc.BSQCacheReference, Image: "lib.so", Off: fOff}:     2,
		{Event: hpc.GlobalPowerEvents, Image: "vmlinux", Off: 0x100}:   7,
	}
	rep := BuildReport(counts, res, []hpc.Event{hpc.GlobalPowerEvents, hpc.BSQCacheReference})
	return rep, counts, res
}

func TestImageSummary(t *testing.T) {
	rep, _, _ := viewsTestReport()
	rows := rep.ImageSummary()
	if len(rows) != 2 {
		t.Fatalf("%d images", len(rows))
	}
	if rows[0].Image != "lib.so" || rows[0].Counts[hpc.GlobalPowerEvents] != 18 {
		t.Errorf("top image = %+v", rows[0])
	}
	if rows[1].Image != "vmlinux" || rows[1].Counts[hpc.GlobalPowerEvents] != 7 {
		t.Errorf("second image = %+v", rows[1])
	}
	var buf bytes.Buffer
	if err := FormatImageSummary(&buf, rep, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "lib.so") || !strings.Contains(out, "Image name") {
		t.Errorf("summary output:\n%s", out)
	}
}

func TestDetailsFor(t *testing.T) {
	_, counts, res := viewsTestReport()
	details := DetailsFor(counts, res, "lib.so")
	if len(details) != 3 {
		t.Fatalf("%d detail rows, want 3", len(details))
	}
	// Sorted by offset; first two belong to f.
	if details[0].Symbol != "f" || details[0].Counts[hpc.GlobalPowerEvents] != 10 {
		t.Errorf("first detail = %+v", details[0])
	}
	if details[0].Counts[hpc.BSQCacheReference] != 2 {
		t.Errorf("miss count not merged per offset: %+v", details[0])
	}
	if details[1].Symbol != "f" || details[1].Counts[hpc.GlobalPowerEvents] != 5 {
		t.Errorf("second detail = %+v", details[1])
	}
	if details[2].Symbol != "g" {
		t.Errorf("third detail = %+v", details[2])
	}
	// Unknown image: empty.
	if got := DetailsFor(counts, res, "nothing"); len(got) != 0 {
		t.Errorf("phantom details: %v", got)
	}
	var buf bytes.Buffer
	if err := FormatDetails(&buf, details, []hpc.Event{hpc.GlobalPowerEvents}, 2); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 { // header + 2 rows
		t.Errorf("maxRows not applied:\n%s", buf.String())
	}
}
