package oprofile

import (
	"fmt"

	"viprof/internal/addr"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/image"
	"viprof/internal/kernel"
)

// ModuleName is the kernel module's image name.
const ModuleName = "oprofile.ko"

// EventConfig arms one hardware counter.
type EventConfig struct {
	Event  hpc.Event
	Period uint64 // "the prescribed number of hardware events" per sample (§3)
}

// MinPeriod is the smallest accepted sampling period. Like the real
// opcontrol's per-event minimum counts, it prevents configuring a
// period shorter than the NMI service cost, which would put the system
// into a permanent NMI storm.
const MinPeriod = 5_000

// Registry is the VIProf runtime-profiler extension point: it lets the
// sampling path ask whether a PC belongs to a VM-registered JIT region,
// and with which execution epoch. Plain OProfile runs with a nil
// Registry and logs such samples as anonymous.
type Registry interface {
	// Check reports whether pc lies in a registered JIT region of the
	// process, and the region's current epoch.
	Check(pid int, pc addr.Address) (jit bool, epoch int)
	// Stack returns up to max caller PCs of the process's current call
	// chain for call-graph sampling (nil if unsupported).
	Stack(pid int, max int) []addr.Address
	// Epoch returns the process's current execution epoch (0 if the
	// process has no registered VM).
	Epoch(pid int) int
}

// DriverStats counts sampling activity.
type DriverStats struct {
	NMIs        uint64
	Logged      uint64
	Dropped     uint64 // buffer-full drops
	AnonSamples uint64
	JITSamples  uint64
	KernSamples uint64
}

// Driver is the kernel side of the profiler: it arms the counters,
// services overflow NMIs, attributes the interrupted PC to a memory
// region, and queues samples for the daemon.
type Driver struct {
	m      *kernel.Machine
	module *kernel.LoadedModule
	reg    Registry

	// bufs holds one sample ring per CPU (the real driver keeps per-CPU
	// buffers so the NMI path never contends). capacity bounds each
	// shard; a 1-core machine behaves exactly like the pre-SMP single
	// buffer. wmLatched and percpu are indexed the same way.
	bufs      [][]Sample
	capacity  int
	wmLatched []bool // watermark fired; reset when a drain brings the shard below half
	stats     DriverStats
	percpu    []DriverStats

	// CallGraphDepth, when > 0, records up to that many caller PCs per
	// sample (VIProf's cross-layer call-graph extension).
	CallGraphDepth int
	stacks         []StackSample

	// handlerOps is the simulated cost of servicing one NMI. On the
	// paper's Pentium 4 an NMI round trip plus region lookup costs a
	// few thousand cycles; that cost is what makes fast sampling slow
	// the system down (Figure 2).
	handlerOps int
	// anonOps is the extra bookkeeping on the anonymous-memory path
	// (the code VIProf's mapping check replaces — the paper credits
	// its occasional speedups over OProfile to skipping this, §4.3).
	anonOps int
	// jitOps is the cost of the VIProf region check + epoch tag.
	jitOps int

	// OnWatermark, if set, is invoked when the buffer crosses half
	// capacity (the driver kicks the daemon awake, as the real module
	// does via its event buffer wait queue).
	OnWatermark func()
}

// StackSample is one call-graph record: the sampled PC plus its caller
// chain, innermost first.
type StackSample struct {
	Event   hpc.Event
	PID     int
	PC      addr.Address
	Callers []addr.Address
	Epoch   int
	Kernel  bool
}

// buildModule constructs the oprofile.ko image.
func buildModule() (*image.Image, error) {
	b := image.NewBuilder(ModuleName)
	for _, s := range []struct {
		name string
		size uint64
	}{
		{"op_nmi_handler", 600},
		{"op_do_sample", 900},
		{"op_lookup_vma", 700},
		{"op_anon_bookkeep", 500},
		{"op_jit_check", 400},
		{"op_buffer_add", 400},
		{"op_read_buffer", 600},
	} {
		b.Add(s.name, s.size)
	}
	return b.Image()
}

// NewDriver loads the oprofile kernel module, arms the counters, and
// installs the NMI handler. reg may be nil (plain OProfile).
func NewDriver(m *kernel.Machine, events []EventConfig, bufCap int, reg Registry) (*Driver, error) {
	if len(events) == 0 {
		return nil, fmt.Errorf("oprofile: no events configured")
	}
	if bufCap <= 0 {
		bufCap = 65536
	}
	img, err := buildModule()
	if err != nil {
		return nil, err
	}
	lm, err := m.Kern.LoadModule(img)
	if err != nil {
		return nil, err
	}
	ncpu := len(m.Cores)
	if ncpu == 0 {
		ncpu = 1
	}
	d := &Driver{
		m:          m,
		module:     lm,
		reg:        reg,
		bufs:       make([][]Sample, ncpu),
		capacity:   bufCap,
		wmLatched:  make([]bool, ncpu),
		percpu:     make([]DriverStats, ncpu),
		handlerOps: 2700,
		anonOps:    1300,
		jitOps:     200,
	}
	for _, ec := range events {
		if ec.Period < MinPeriod {
			return nil, fmt.Errorf("oprofile: period %d for %s below minimum %d",
				ec.Period, ec.Event, MinPeriod)
		}
		// Every core has its own counter bank; arm them all so overflow
		// NMIs fire on whichever core the work lands on.
		for _, c := range d.cores() {
			if _, err := c.Bank.Program(ec.Event, ec.Period); err != nil {
				return nil, fmt.Errorf("oprofile: arming %s: %v", ec.Event, err)
			}
		}
	}
	m.Kern.SetNMIHandler(d.handleNMI)
	return d, nil
}

// cores returns the machine's core set (boot core only for machines
// built before the SMP field existed).
func (d *Driver) cores() []*cpu.Core {
	if len(d.m.Cores) > 0 {
		return d.m.Cores
	}
	return []*cpu.Core{d.m.Core}
}

// NumCPU returns the number of per-CPU sample shards.
func (d *Driver) NumCPU() int { return len(d.bufs) }

// Stats returns a copy of the driver's aggregate counters.
func (d *Driver) Stats() DriverStats { return d.stats }

// StatsCPU returns a copy of one CPU shard's counters. The per-CPU
// stats sum exactly to Stats() — the conservation checks assert both.
func (d *Driver) StatsCPU(ci int) DriverStats {
	if ci < 0 || ci >= len(d.percpu) {
		return DriverStats{}
	}
	return d.percpu[ci]
}

// BufferLen returns the number of samples waiting for the daemon
// across all shards.
func (d *Driver) BufferLen() int {
	n := 0
	for _, b := range d.bufs {
		n += len(b)
	}
	return n
}

// ShardLen returns the number of buffered samples in one CPU shard.
func (d *Driver) ShardLen(ci int) int {
	if ci < 0 || ci >= len(d.bufs) {
		return 0
	}
	return len(d.bufs[ci])
}

// handleNMI is the overflow service routine. It runs in NMI context:
// every op it executes is itself profiled work (the simulated cost is
// endogenous).
func (d *Driver) handleNMI(m *kernel.Machine, s cpu.Snapshot, ev hpc.Event) {
	ci := s.CPU
	if ci < 0 || ci >= len(d.bufs) {
		ci = 0
	}
	st := &d.percpu[ci]
	d.stats.NMIs++
	st.NMIs++
	k := m.Kern
	k.ExecKernel("op_nmi_handler", d.handlerOps/3, 1)

	sample := Sample{Event: ev, PID: s.Ctx.PID, Kernel: s.Ctx.Kernel, PC: s.PC, CPU: ci}
	if p, ok := k.Process(s.Ctx.PID); ok {
		sample.Proc = p.Name
	}

	// Attribute the PC to a region, as the real driver does with the
	// interrupted task's mm.
	k.ExecKernel("op_lookup_vma", d.handlerOps/3, 1)
	switch {
	case s.PC.IsKernel():
		if v, ok := k.KernelLookup(s.PC); ok {
			sample.Image = v.Image
			sample.Offset = v.ImageOffset(s.PC)
		}
		d.stats.KernSamples++
		st.KernSamples++
	default:
		var vma addr.VMA
		var mapped bool
		if p, ok := k.Process(s.Ctx.PID); ok {
			vma, mapped = p.Space.Lookup(s.PC)
		}
		switch {
		case mapped && !vma.Anonymous():
			sample.Image = vma.Image
			sample.Offset = vma.ImageOffset(s.PC)
		case mapped:
			// Anonymous memory. The VIProf extension consults the VM
			// registration before the expensive anon bookkeeping path.
			if d.reg != nil {
				k.ExecKernel("op_jit_check", d.jitOps, 1)
				if jit, epoch := d.reg.Check(s.Ctx.PID, s.PC); jit {
					sample.JIT = true
					sample.Epoch = epoch
					d.stats.JITSamples++
					st.JITSamples++
					break
				}
			}
			k.ExecKernel("op_anon_bookkeep", d.anonOps, 1)
			sample.AnonStart, sample.AnonEnd = vma.Start, vma.End
			d.stats.AnonSamples++
			st.AnonSamples++
		default:
			// PC in unmapped memory (e.g. between regions): attribute
			// to the process as a zero-length anon range.
			sample.AnonStart, sample.AnonEnd = s.PC, s.PC
			d.stats.AnonSamples++
			st.AnonSamples++
		}
	}

	k.ExecKernel("op_buffer_add", d.handlerOps/3, 1)
	if len(d.bufs[ci]) >= d.capacity {
		d.stats.Dropped++
		st.Dropped++
		return
	}
	d.bufs[ci] = append(d.bufs[ci], sample)
	d.stats.Logged++
	st.Logged++
	// Level-triggered with a latch: `== capacity/2` would never fire for
	// capacity < 2 and is skipped whenever a partial drain leaves the
	// buffer above half. The latch keeps one crossing from waking the
	// daemon on every subsequent sample; Drain re-arms it. Each CPU
	// shard latches independently.
	if d.OnWatermark != nil && !d.wmLatched[ci] && len(d.bufs[ci]) >= (d.capacity+1)/2 {
		d.wmLatched[ci] = true
		d.OnWatermark()
	}

	if d.CallGraphDepth > 0 && d.reg != nil && !s.Ctx.Kernel {
		if callers := d.reg.Stack(s.Ctx.PID, d.CallGraphDepth); len(callers) > 0 {
			// Caller frames may be JIT code even when the leaf is not,
			// so every stack record carries the VM's current epoch.
			epoch := sample.Epoch
			if !sample.JIT {
				epoch = d.reg.Epoch(s.Ctx.PID)
			}
			d.stacks = append(d.stacks, StackSample{
				Event: ev, PID: s.Ctx.PID, PC: s.PC, Callers: callers,
				Epoch: epoch, Kernel: s.Ctx.Kernel,
			})
		}
	}
}

// Drain hands at most max buffered samples to the daemon and removes
// them from the buffers, walking shards in CPU order (FIFO within a
// shard). On a 1-core machine this is exactly the pre-SMP FIFO drain.
func (d *Driver) Drain(max int) []Sample {
	total := d.BufferLen()
	if max <= 0 || max > total {
		max = total
	}
	out := make([]Sample, 0, max)
	for ci := range d.bufs {
		if len(out) == max {
			break
		}
		take := max - len(out)
		if take > len(d.bufs[ci]) {
			take = len(d.bufs[ci])
		}
		out = append(out, d.bufs[ci][:take]...)
		d.shrinkShard(ci, take)
	}
	return out
}

// DrainShards removes and returns up to maxPerShard samples from every
// CPU shard (FIFO within each). The result is indexed by CPU id; empty
// shards yield nil slices. This is the entry point the daemon's
// concurrent drain uses — each returned shard can be aggregated by a
// separate goroutine because the slices share no backing store.
func (d *Driver) DrainShards(maxPerShard int) [][]Sample {
	out := make([][]Sample, len(d.bufs))
	for ci := range d.bufs {
		take := len(d.bufs[ci])
		if maxPerShard > 0 && take > maxPerShard {
			take = maxPerShard
		}
		if take == 0 {
			continue
		}
		shard := make([]Sample, take)
		copy(shard, d.bufs[ci][:take])
		out[ci] = shard
		d.shrinkShard(ci, take)
	}
	return out
}

// shrinkShard drops the first take samples from a shard and re-arms
// its watermark latch if the drain brought it below half capacity.
func (d *Driver) shrinkShard(ci, take int) {
	if take == 0 {
		return
	}
	n := copy(d.bufs[ci], d.bufs[ci][take:])
	d.bufs[ci] = d.bufs[ci][:n]
	if len(d.bufs[ci]) < (d.capacity+1)/2 {
		d.wmLatched[ci] = false
	}
}

// DrainStacks removes and returns all buffered call-graph records.
func (d *Driver) DrainStacks() []StackSample {
	out := d.stacks
	d.stacks = nil
	return out
}

// Disarm stops sampling (counters removed on every core, NMI handler
// detached).
func (d *Driver) Disarm() {
	for _, c := range d.cores() {
		for ev := hpc.Event(0); int(ev) < hpc.NumEvents; ev++ {
			c.Bank.Remove(ev)
		}
	}
	d.m.Kern.SetNMIHandler(nil)
}
