package oprofile

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
	"viprof/internal/image"
	"viprof/internal/kernel"
)

func newMachine(seed int64) *kernel.Machine {
	core := cpu.New(hpc.NewBank(), cache.DefaultHierarchy())
	return kernel.NewMachine(core, seed)
}

func TestSampleKeyOf(t *testing.T) {
	file := Sample{Event: hpc.GlobalPowerEvents, Image: "libc.so", Offset: 0x100, Proc: "app"}
	k := KeyOf(file)
	if k.Image != "libc.so" || k.Off != 0x100 || k.JIT {
		t.Errorf("file key = %+v", k)
	}
	anon := Sample{Event: hpc.GlobalPowerEvents, PC: 0x6000_1000,
		AnonStart: 0x6000_0000, AnonEnd: 0x6800_0000, Proc: "jikesrvm"}
	k = KeyOf(anon)
	if !strings.Contains(k.Image, "anon (range:") || !strings.Contains(k.Image, "jikesrvm") {
		t.Errorf("anon image = %q", k.Image)
	}
	if k.Off != anon.PC {
		t.Error("anon key must carry the absolute PC")
	}
	jit := Sample{Event: hpc.BSQCacheReference, PC: 0x6100_0000, JIT: true, Epoch: 3, Proc: "jikesrvm"}
	k = KeyOf(jit)
	if k.Image != JITImageName || k.Epoch != 3 || !k.JIT || k.Off != jit.PC {
		t.Errorf("jit key = %+v", k)
	}
}

func TestCountsRoundTrip(t *testing.T) {
	counts := map[Key]uint64{
		{Event: hpc.GlobalPowerEvents, Image: "vmlinux", Proc: "", Off: 0x40}:                                   7,
		{Event: hpc.BSQCacheReference, Image: "anon (range:0x1-0x2),jvm", Proc: "jvm", Off: 0x9}:                3,
		{Event: hpc.GlobalPowerEvents, Image: JITImageName, Proc: "jvm", JIT: true, Epoch: 5, Off: 0x6000_0040}: 11,
	}
	var order []Key
	for k := range counts {
		order = append(order, k)
	}
	var buf bytes.Buffer
	if err := WriteCounts(&buf, counts, order); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCounts(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(counts) {
		t.Fatalf("round trip: %d keys, want %d", len(got), len(counts))
	}
	for k, v := range counts {
		if got[k] != v {
			t.Errorf("key %+v: count %d, want %d", k, got[k], v)
		}
	}
}

func TestReadCountsSumsDuplicates(t *testing.T) {
	line := "0\t0\t0\t64\t5\tapp\tlibc.so\n"
	got, err := ReadCounts(strings.NewReader(line + line))
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Event: hpc.GlobalPowerEvents, Image: "libc.so", Proc: "app", Off: 64}
	if got[k] != 10 {
		t.Errorf("duplicate lines not summed: %d", got[k])
	}
}

func TestReadCountsErrors(t *testing.T) {
	if _, err := ReadCounts(strings.NewReader("garbage line\n")); err == nil {
		t.Error("malformed line accepted")
	}
	if _, err := ReadCounts(strings.NewReader("x\t0\t0\t1\t1\tp\timg\n")); err == nil {
		t.Error("non-numeric event accepted")
	}
}

// Property: WriteCounts/ReadCounts round-trips arbitrary key content,
// including image names with spaces, commas and parens.
func TestCountsRoundTripQuick(t *testing.T) {
	f := func(off uint32, cnt uint16, epoch uint8, jit bool) bool {
		k := Key{
			Event: hpc.BSQCacheReference,
			Image: "anon (range:0x1-0x2),weird proc name",
			Proc:  "weird proc name",
			JIT:   jit,
			Epoch: int(epoch),
			Off:   addr.Address(off),
		}
		counts := map[Key]uint64{k: uint64(cnt) + 1}
		var buf bytes.Buffer
		if err := WriteCounts(&buf, counts, []Key{k}); err != nil {
			return false
		}
		got, err := ReadCounts(&buf)
		if err != nil {
			return false
		}
		return got[k] == uint64(cnt)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// busyExec burns ops at a fixed user PC, optionally touching memory.
func busyExec(pc addr.Address, total int) kernel.Executor {
	done := 0
	return kernel.ExecFunc(func(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
		for done < total && !m.Core.Expired() {
			m.Core.Exec(cpu.Op{PC: pc, Cost: 1})
			done++
		}
		if done >= total {
			return kernel.StepExit
		}
		return kernel.StepYield
	})
}

func TestDriverAttributesSamples(t *testing.T) {
	m := newMachine(1)
	p, _ := m.Kern.NewProcess("app", busyExec(0, 0))
	b := image.NewBuilder("app.bin")
	mainOff := b.Add("main", 4096)
	img, _ := b.Image()
	base, err := m.Kern.LoadImage(p, img, false)
	if err != nil {
		t.Fatal(err)
	}
	// Replace the executor to run at main's address.
	// (NewProcess took a placeholder; recreate properly.)
	m2 := newMachine(1)
	p2, _ := m2.Kern.NewProcess("app", busyExec(base+mainOff+16, 500_000))
	if _, err := m2.Kern.LoadImage(p2, img, false); err != nil {
		t.Fatal(err)
	}
	drv, err := NewDriver(m2, []EventConfig{{hpc.GlobalPowerEvents, 10_000}}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	if drv.Stats().NMIs == 0 || drv.BufferLen() == 0 {
		t.Fatalf("no samples: %+v", drv.Stats())
	}
	samples := drv.Drain(0)
	var inMain int
	for _, s := range samples {
		if s.Image == "app.bin" {
			sym, ok := img.Resolve(s.Offset)
			if !ok || sym.Name != "main" {
				t.Errorf("app sample at offset %s resolves to %q", s.Offset, sym.Name)
			}
			inMain++
		}
		if s.Kernel && s.Image == "" {
			t.Error("kernel sample with no image")
		}
	}
	if inMain == 0 {
		t.Error("no samples attributed to app.bin main")
	}
	// Note: with a single constant-cost counter the NMI handler can
	// never contain an overflow boundary (periods are spaced a full
	// period apart and each boundary immediately precedes the handler),
	// so the driver's own kernel samples require a second event or a
	// daemon; see TestTwoCountersSampleHandler.
}

// With two counters at different periods, the second counter's
// overflows land inside the first's handler: the profiler observes its
// own cost, as on real hardware.
func TestTwoCountersSampleHandler(t *testing.T) {
	m := newMachine(1)
	m.Kern.NewProcess("app", kernel.ExecFunc(func(mm *kernel.Machine, pp *kernel.Process) kernel.StepResult {
		for !mm.Core.Expired() {
			// Memory ops generate L2 misses for the second counter.
			mm.Core.Exec(cpu.Op{PC: kernel.UserBase, Cost: 1,
				Mem: addr.Address(0x7000_0000 + (mm.Core.Cycles()*97)%(1<<22))})
		}
		return kernel.StepYield
	}))
	drv, err := NewDriver(m, []EventConfig{
		{hpc.GlobalPowerEvents, 20_000},
		{hpc.BSQCacheReference, MinPeriod},
	}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m.Kern.Run(10_000_000)
	kern := 0
	for _, s := range drv.Drain(0) {
		if s.Kernel {
			kern++
		}
	}
	if kern == 0 {
		t.Errorf("no kernel samples with two counters: %+v", drv.Stats())
	}
}

func TestDriverAnonymousAndJITPaths(t *testing.T) {
	// Executor running inside an anonymous exec mapping.
	m := newMachine(1)
	var anonBase addr.Address
	p, _ := m.Kern.NewProcess("jikesrvm", kernel.ExecFunc(func(mm *kernel.Machine, pp *kernel.Process) kernel.StepResult {
		for !mm.Core.Expired() {
			mm.Core.Exec(cpu.Op{PC: anonBase + 0x100, Cost: 1})
		}
		return kernel.StepYield
	}))
	var err error
	anonBase, err = m.Kern.MapAnon(p, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}

	// Plain driver: anonymous.
	drv, err := NewDriver(m, []EventConfig{{hpc.GlobalPowerEvents, 5_000}}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(20_000_000); err == nil {
		t.Fatal("expected cycle-limit stop for endless workload")
	}
	st := drv.Stats()
	if st.AnonSamples == 0 || st.JITSamples != 0 {
		t.Fatalf("plain driver stats: %+v", st)
	}
	for _, s := range drv.Drain(0) {
		if s.Image == "" && !s.JIT {
			if s.AnonStart != anonBase {
				t.Errorf("anon range start %s, want %s", s.AnonStart, anonBase)
			}
			break
		}
	}
}

type fakeRegistry struct {
	lo, hi addr.Address
	pid    int
	epoch  int
	stack  []addr.Address
}

func (f *fakeRegistry) Check(pid int, pc addr.Address) (bool, int) {
	if pid == f.pid && pc >= f.lo && pc < f.hi {
		return true, f.epoch
	}
	return false, 0
}
func (f *fakeRegistry) Stack(pid int, max int) []addr.Address { return f.stack }
func (f *fakeRegistry) Epoch(pid int) int                     { return f.epoch }

func TestDriverJITRegistry(t *testing.T) {
	m := newMachine(1)
	var anonBase addr.Address
	p, _ := m.Kern.NewProcess("jikesrvm", kernel.ExecFunc(func(mm *kernel.Machine, pp *kernel.Process) kernel.StepResult {
		for !mm.Core.Expired() {
			mm.Core.Exec(cpu.Op{PC: anonBase + 0x100, Cost: 1})
		}
		return kernel.StepYield
	}))
	var err error
	anonBase, err = m.Kern.MapAnon(p, 1<<20, true)
	if err != nil {
		t.Fatal(err)
	}
	reg := &fakeRegistry{lo: anonBase, hi: anonBase + 1<<20, pid: p.PID, epoch: 7,
		stack: []addr.Address{anonBase + 0x500}}
	drv, err := NewDriver(m, []EventConfig{{hpc.GlobalPowerEvents, 5_000}}, 0, reg)
	if err != nil {
		t.Fatal(err)
	}
	drv.CallGraphDepth = 4
	m.Kern.Run(20_000_000)
	st := drv.Stats()
	if st.JITSamples == 0 {
		t.Fatalf("registry never matched: %+v", st)
	}
	found := false
	for _, s := range drv.Drain(0) {
		if s.JIT {
			found = true
			if s.Epoch != 7 {
				t.Errorf("JIT sample epoch %d, want 7", s.Epoch)
			}
		}
	}
	if !found {
		t.Error("no JIT samples in buffer")
	}
	if len(drv.DrainStacks()) == 0 {
		t.Error("call-graph records missing")
	}
}

func TestDriverBufferOverflowDrops(t *testing.T) {
	m := newMachine(1)
	m.Kern.NewProcess("app", busyExec(kernel.UserBase, 2_000_000))
	drv, err := NewDriver(m, []EventConfig{{hpc.GlobalPowerEvents, MinPeriod}}, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	st := drv.Stats()
	if st.Dropped == 0 {
		t.Errorf("tiny buffer never dropped: %+v", st)
	}
	if drv.BufferLen() > 8 {
		t.Errorf("buffer exceeded capacity: %d", drv.BufferLen())
	}
}

func TestDaemonDrainsAndFlushes(t *testing.T) {
	m := newMachine(1)
	m.Kern.NewProcess("app", busyExec(kernel.UserBase, 3_000_000))
	prof, err := Start(m, Config{
		Events: []EventConfig{{hpc.GlobalPowerEvents, 9_000}},
		Daemon: DaemonConfig{WakeCycles: 100_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	prof.Shutdown(m)
	if prof.Daemon.SamplesLogged() == 0 {
		t.Fatal("daemon logged nothing")
	}
	if prof.Driver.BufferLen() != 0 {
		t.Error("samples left in buffer after shutdown")
	}
	if !m.Kern.Disk().Exists(SampleFile) {
		t.Fatal("no sample file on disk")
	}
	// Disk contents must agree with the daemon's in-memory aggregate.
	data, _ := m.Kern.Disk().Read(SampleFile)
	fromDisk, err := ReadCounts(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	mem := prof.Daemon.Counts()
	if len(fromDisk) != len(mem) {
		t.Fatalf("disk has %d keys, memory %d", len(fromDisk), len(mem))
	}
	for k, v := range mem {
		if fromDisk[k] != v {
			t.Errorf("key %+v: disk %d, mem %d", k, fromDisk[k], v)
		}
	}
}

func TestOpreportEndToEnd(t *testing.T) {
	m := newMachine(1)
	b := image.NewBuilder("app.bin")
	mainOff := b.Add("main", 4096)
	img, _ := b.Image()
	var base addr.Address
	remaining := 3_000_000
	p, _ := m.Kern.NewProcess("app", kernel.ExecFunc(func(mm *kernel.Machine, pp *kernel.Process) kernel.StepResult {
		for remaining > 0 && !mm.Core.Expired() {
			// Stay inside main's 4 KiB symbol: wrap every 1000 ops.
			mm.Core.ExecRange(base+mainOff, 1000, 4, 1)
			remaining -= 1000
		}
		if remaining <= 0 {
			return kernel.StepExit
		}
		return kernel.StepYield
	}))
	var err error
	base, err = m.Kern.LoadImage(p, img, false)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Start(m, Config{Events: []EventConfig{{hpc.GlobalPowerEvents, 9_000}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Kern.Run(0); err != nil {
		t.Fatal(err)
	}
	prof.Shutdown(m)

	images := map[string]*image.Image{
		"app.bin": img,
		"vmlinux": m.Kern.Vmlinux(),
	}
	if mod, ok := m.Kern.Module(ModuleName); ok {
		images[ModuleName] = mod.Image
	}
	rep, err := Opreport(m.Kern.Disk(), images, []hpc.Event{hpc.GlobalPowerEvents})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 || rep.Totals[hpc.GlobalPowerEvents] == 0 {
		t.Fatal("empty report")
	}
	mainRow, ok := rep.Find("main")
	if !ok {
		t.Fatal("main not in report")
	}
	if pct := rep.Percent(mainRow, hpc.GlobalPowerEvents); pct < 50 {
		t.Errorf("main only %.1f%% of a main-only workload", pct)
	}
	// The report must be sorted descending by the primary event.
	for i := 1; i < len(rep.Rows); i++ {
		if rep.Rows[i].Counts[hpc.GlobalPowerEvents] > rep.Rows[i-1].Counts[hpc.GlobalPowerEvents] {
			t.Fatal("rows not sorted")
		}
	}
	var buf bytes.Buffer
	if err := Format(&buf, rep, 10); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Time %") || !strings.Contains(out, "main") {
		t.Errorf("formatted report:\n%s", out)
	}
}

func TestELFResolver(t *testing.T) {
	b := image.NewBuilder("lib.so")
	off := b.Add("fn", 100)
	img, _ := b.Image()
	r := &ELFResolver{Images: map[string]*image.Image{"lib.so": img}}

	if im, sym := r.Resolve(Key{Image: "lib.so", Off: off + 10}); im != "lib.so" || sym != "fn" {
		t.Errorf("resolve = %s %s", im, sym)
	}
	if _, sym := r.Resolve(Key{Image: "lib.so", Off: 0x7FFF}); sym != NoSymbols {
		t.Errorf("gap resolve = %s", sym)
	}
	if _, sym := r.Resolve(Key{Image: "stripped.bin", Off: 0}); sym != NoSymbols {
		t.Errorf("missing image resolve = %s", sym)
	}
	if im, sym := r.Resolve(Key{Image: JITImageName, JIT: true, Off: 0x6000_0000}); im != JITImageName || sym != NoSymbols {
		t.Errorf("jit resolve by baseline = %s %s", im, sym)
	}
}

func TestStartErrors(t *testing.T) {
	m := newMachine(1)
	if _, err := Start(m, Config{}); err == nil {
		t.Error("Start with no events accepted")
	}
	if _, err := Start(m, Config{Events: []EventConfig{{hpc.GlobalPowerEvents, 0}}}); err == nil {
		t.Error("zero period accepted")
	}
	m2 := newMachine(1)
	if _, err := Start(m2, Config{Events: []EventConfig{{hpc.GlobalPowerEvents, MinPeriod - 1}}}); err == nil {
		t.Error("sub-minimum period accepted (NMI storm risk)")
	}
}
