package oprofile

import (
	"bytes"
	"fmt"
	"io"
	"sort"

	"viprof/internal/hpc"
	"viprof/internal/image"
	"viprof/internal/kernel"
)

// Post-processing ("OProfile also includes postprocessing utilities to
// enable flexible reporting", §3). Post-processing is offline: it reads
// the sample files from the simulated disk and costs no simulated time.

// Row is one report line: counts per event for an (image, symbol) pair.
type Row struct {
	Image  string
	Symbol string
	Counts [hpc.NumEvents]uint64
}

// CPUTotals is one CPU's per-event sample totals — the report's
// per-CPU breakdown on SMP machines.
type CPUTotals struct {
	CPU    int
	Counts [hpc.NumEvents]uint64
}

// Report is an opreport-style symbol report.
type Report struct {
	Events []hpc.Event // column order
	Totals [hpc.NumEvents]uint64
	Rows   []Row // sorted descending by the first event's count

	// PerCPU splits Totals by the CPU each sample was taken on,
	// ascending by CPU id. The per-CPU entries always sum to Totals;
	// single-core runs have exactly one entry.
	PerCPU []CPUTotals

	// Integrity, when set, summarizes what was lost or damaged on the
	// way to this report (nil for purely in-memory reports).
	Integrity *Integrity

	// Precomputed views, built once (BuildReport, or lazily on first
	// use for hand-assembled reports) instead of re-scanning and
	// re-sorting the row set per lookup/view:
	symIdx  map[string]int        // symbol -> index of its first row in Rows order
	imgIdx  map[string]int        // image -> index into imgRows
	imgRows []Row                 // per-image aggregates, primary-event order
	byEvent map[hpc.Event][]int32 // Rows order per event column, as index slices
}

// ensureIndex builds the precomputed views. Rows must not be mutated
// after the first lookup/view call.
func (r *Report) ensureIndex() {
	if r.symIdx != nil {
		return
	}
	r.symIdx = make(map[string]int, len(r.Rows))
	r.imgIdx = make(map[string]int)
	for i, row := range r.Rows {
		if _, ok := r.symIdx[row.Symbol]; !ok {
			r.symIdx[row.Symbol] = i
		}
		j, ok := r.imgIdx[row.Image]
		if !ok {
			j = len(r.imgRows)
			r.imgIdx[row.Image] = j
			r.imgRows = append(r.imgRows, Row{Image: row.Image, Symbol: "*"})
		}
		for ev := range row.Counts {
			r.imgRows[j].Counts[ev] += row.Counts[ev]
		}
	}
	primary := hpc.GlobalPowerEvents
	if len(r.Events) > 0 {
		primary = r.Events[0]
	}
	sort.Slice(r.imgRows, func(i, j int) bool {
		if r.imgRows[i].Counts[primary] != r.imgRows[j].Counts[primary] {
			return r.imgRows[i].Counts[primary] > r.imgRows[j].Counts[primary]
		}
		return r.imgRows[i].Image < r.imgRows[j].Image
	})
	for j, row := range r.imgRows {
		r.imgIdx[row.Image] = j
	}
	r.byEvent = make(map[hpc.Event][]int32, len(r.Events))
	for _, ev := range r.Events {
		order := make([]int32, len(r.Rows))
		for i := range order {
			order[i] = int32(i)
		}
		sort.Slice(order, func(a, b int) bool {
			x, y := &r.Rows[order[a]], &r.Rows[order[b]]
			if x.Counts[ev] != y.Counts[ev] {
				return x.Counts[ev] > y.Counts[ev]
			}
			if x.Image != y.Image {
				return x.Image < y.Image
			}
			return x.Symbol < y.Symbol
		})
		r.byEvent[ev] = order
	}
}

// ViewRows returns the report rows ordered by the given event column
// (descending, ties by image then symbol) — opreport's per-event view,
// served from the sort orders precomputed as index slices. Events
// outside the report's column set fall back to the primary order.
func (r *Report) ViewRows(ev hpc.Event) []Row {
	r.ensureIndex()
	order, ok := r.byEvent[ev]
	if !ok {
		return r.Rows
	}
	out := make([]Row, len(order))
	for i, j := range order {
		out[i] = r.Rows[j]
	}
	return out
}

// Percent returns the row's share of the report total for an event.
func (r *Report) Percent(row Row, ev hpc.Event) float64 {
	if r.Totals[ev] == 0 {
		return 0
	}
	return 100 * float64(row.Counts[ev]) / float64(r.Totals[ev])
}

// Find returns the first row whose symbol matches exactly (first in
// the primary sort order, via the precomputed symbol index).
func (r *Report) Find(symbol string) (Row, bool) {
	r.ensureIndex()
	i, ok := r.symIdx[symbol]
	if !ok {
		return Row{}, false
	}
	return r.Rows[i], true
}

// FindImage returns the total counts of all rows under an image name,
// served from the per-image aggregates built once with the report.
func (r *Report) FindImage(img string) (Row, bool) {
	r.ensureIndex()
	i, ok := r.imgIdx[img]
	if !ok {
		return Row{}, false
	}
	return r.imgRows[i], true
}

// NoSymbols is the placeholder opreport prints for images without
// symbol tables.
const NoSymbols = "(no symbols)"

// Resolver maps an aggregation key to display (image, symbol) names.
// The baseline resolver knows only object-file symbol tables; the
// VIProf post-processor (internal/core) layers RVM.map and epoch code
// maps on top by wrapping one of these.
type Resolver interface {
	Resolve(k Key) (img, symbol string)
}

// ELFResolver resolves keys against ordinary symbol tables, exactly
// like opreport: file-backed samples resolve to a symbol when the image
// has one; anonymous, JIT, and symbol-less images come out as
// "(no symbols)".
type ELFResolver struct {
	// Images maps image name to its symbol table. Entries may be
	// missing (stripped binaries, the RVM boot image's internal
	// format).
	Images map[string]*image.Image
}

// Resolve implements Resolver.
func (r *ELFResolver) Resolve(k Key) (string, string) {
	if k.JIT {
		// Plain OProfile has no JIT keys; if the extended driver logged
		// them but the baseline post-processor is used, they are opaque.
		return JITImageName, NoSymbols
	}
	im, ok := r.Images[k.Image]
	if !ok || im == nil || im.NumSymbols() == 0 {
		return k.Image, NoSymbols
	}
	if s, found := im.Resolve(k.Off); found {
		return k.Image, s.Name
	}
	return k.Image, NoSymbols
}

// BuildReport aggregates raw counts into a symbol report using the
// given resolver and event column order.
func BuildReport(counts map[Key]uint64, res Resolver, events []hpc.Event) *Report {
	type rowKey struct{ img, sym string }
	agg := make(map[rowKey]*Row)
	cpuAgg := make(map[int]*CPUTotals)
	rep := &Report{Events: events}
	for k, c := range counts {
		img, sym := res.Resolve(k)
		rk := rowKey{img, sym}
		row, ok := agg[rk]
		if !ok {
			row = &Row{Image: img, Symbol: sym}
			agg[rk] = row
		}
		row.Counts[k.Event] += c
		rep.Totals[k.Event] += c
		ct, ok := cpuAgg[k.CPU]
		if !ok {
			ct = &CPUTotals{CPU: k.CPU}
			cpuAgg[k.CPU] = ct
		}
		ct.Counts[k.Event] += c
	}
	for _, ct := range cpuAgg {
		rep.PerCPU = append(rep.PerCPU, *ct)
	}
	sort.Slice(rep.PerCPU, func(i, j int) bool { return rep.PerCPU[i].CPU < rep.PerCPU[j].CPU })
	rep.Rows = make([]Row, 0, len(agg))
	for _, row := range agg {
		rep.Rows = append(rep.Rows, *row)
	}
	primary := hpc.GlobalPowerEvents
	if len(events) > 0 {
		primary = events[0]
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		if a.Counts[primary] != b.Counts[primary] {
			return a.Counts[primary] > b.Counts[primary]
		}
		if a.Image != b.Image {
			return a.Image < b.Image
		}
		return a.Symbol < b.Symbol
	})
	rep.ensureIndex()
	return rep
}

// Opreport reads the sample file from disk and builds the baseline
// (JIT-blind) report — the lower half of the paper's Figure 1.
func Opreport(disk *kernel.Disk, images map[string]*image.Image, events []hpc.Event) (*Report, error) {
	data, err := disk.Read(SampleFile)
	if err != nil {
		return nil, fmt.Errorf("opreport: %v", err)
	}
	counts, err := ReadCounts(bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	return BuildReport(counts, &ELFResolver{Images: images}, events), nil
}

// eventLabel returns the percentage-column header for an event, as the
// paper's Figure 1 captions them.
func eventLabel(ev hpc.Event) string {
	switch ev {
	case hpc.GlobalPowerEvents:
		return "Time %"
	case hpc.BSQCacheReference:
		return "Dmiss %"
	default:
		return ev.String() + " %"
	}
}

// Format renders the report in Figure 1's layout: one percentage column
// per event, then image and symbol names. maxRows <= 0 prints all rows.
func Format(w io.Writer, r *Report, maxRows int) error {
	for _, ev := range r.Events {
		if _, err := fmt.Fprintf(w, "%-9s", eventLabel(ev)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%-28s %s\n", "Image name", "Symbol name"); err != nil {
		return err
	}
	n := len(r.Rows)
	if maxRows > 0 && maxRows < n {
		n = maxRows
	}
	for _, row := range r.Rows[:n] {
		for _, ev := range r.Events {
			if _, err := fmt.Fprintf(w, "%-9.4f", r.Percent(row, ev)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%-28s %s\n", row.Image, row.Symbol); err != nil {
			return err
		}
	}
	// Per-CPU breakdown, SMP runs only: single-core reports stay
	// byte-identical to pre-SMP output.
	if len(r.PerCPU) > 1 {
		if _, err := fmt.Fprintf(w, "\nSamples by CPU:\n"); err != nil {
			return err
		}
		for _, ct := range r.PerCPU {
			if _, err := fmt.Fprintf(w, "  cpu%-3d", ct.CPU); err != nil {
				return err
			}
			for _, ev := range r.Events {
				pct := 0.0
				if r.Totals[ev] > 0 {
					pct = 100 * float64(ct.Counts[ev]) / float64(r.Totals[ev])
				}
				if _, err := fmt.Fprintf(w, " %s=%d (%.1f%%)", ev, ct.Counts[ev], pct); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	return nil
}
