package oprofile

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/record"
)

// RetentionStats is the persisted outcome of the retention pass
// (core.RunRetention): every quarantined-evidence file it scanned, kept,
// or pruned, and why. Written as one framed record per completed pass at
// RetentionStatsFile; the last intact record is authoritative. The
// Survivors ledger doubles as the pass's age tracker: the simulated disk
// has no timestamps, so a file's age is the number of consecutive
// retention passes that have seen it.
type RetentionStats struct {
	// Scanned is every quarantined file seen this pass; Kept/KeptBytes
	// what remains after pruning; Pruned/PrunedBytes what was removed.
	Scanned, Kept, Pruned int
	KeptBytes, PrunedBytes uint64
	// Per-reason prune counts: age (survived more passes than the
	// policy allows), count (excess beyond the file budget), size
	// (excess beyond the byte budget).
	AgePruned, CountPruned, SizePruned int
	// PriorDamaged reports the previous pass's record existed but was
	// torn or unparseable — the age ledger restarted from zero.
	PriorDamaged bool
	// StatsErrors counts failed persists of this record. The pass
	// persists decisions BEFORE removing anything, so a failed persist
	// aborts the prune: evidence is never deleted untracked.
	StatsErrors int
	// Survivors maps each kept file to the number of passes that have
	// seen it (its age in pass units).
	Survivors map[string]int
	// Clean reports the pass completed (decisions persisted; prunes,
	// if any, applied).
	Clean bool
}

// RetentionStatsFile is where the retention pass persists its ledger.
const RetentionStatsFile = "var/lib/viprof/retention.stats"

// AnyAction reports whether the pass did (or failed to do) anything
// worth surfacing.
func (rs *RetentionStats) AnyAction() bool {
	if rs == nil {
		return false
	}
	return rs.Pruned > 0 || rs.StatsErrors > 0 || rs.PriorDamaged || !rs.Clean
}

// Payload serializes the stats as key=value lines (the caller frames
// the result with record.Frame).
func (rs *RetentionStats) Payload() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "scanned=%d\nkept=%d\npruned=%d\nkept_bytes=%d\npruned_bytes=%d\n",
		rs.Scanned, rs.Kept, rs.Pruned, rs.KeptBytes, rs.PrunedBytes)
	fmt.Fprintf(&buf, "age_pruned=%d\ncount_pruned=%d\nsize_pruned=%d\nstats_errors=%d\n",
		rs.AgePruned, rs.CountPruned, rs.SizePruned, rs.StatsErrors)
	fmt.Fprintf(&buf, "prior_damaged=%d\n", boolInt(rs.PriorDamaged))
	paths := make([]string, 0, len(rs.Survivors))
	for p := range rs.Survivors {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(&buf, "survivor.%s=%d\n", p, rs.Survivors[p])
	}
	fmt.Fprintf(&buf, "clean=%d\n", boolInt(rs.Clean))
	return buf.Bytes()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// ReadRetentionStats parses the persisted retention record (last intact
// record wins); nil if no intact record survives.
func ReadRetentionStats(data []byte) *RetentionStats {
	recs, _ := record.Scan(data)
	if len(recs) == 0 {
		return nil
	}
	rs := &RetentionStats{Survivors: make(map[string]int)}
	for _, line := range strings.Split(string(recs[len(recs)-1]), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil
		}
		if p, found := strings.CutPrefix(k, "survivor."); found {
			rs.Survivors[p] = int(n)
			continue
		}
		switch k {
		case "scanned":
			rs.Scanned = int(n)
		case "kept":
			rs.Kept = int(n)
		case "pruned":
			rs.Pruned = int(n)
		case "kept_bytes":
			rs.KeptBytes = n
		case "pruned_bytes":
			rs.PrunedBytes = n
		case "age_pruned":
			rs.AgePruned = int(n)
		case "count_pruned":
			rs.CountPruned = int(n)
		case "size_pruned":
			rs.SizePruned = int(n)
		case "stats_errors":
			rs.StatsErrors = int(n)
		case "prior_damaged":
			rs.PriorDamaged = n != 0
		case "clean":
			rs.Clean = n != 0
		}
	}
	return rs
}
