package oprofile

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/kernel"
	"viprof/internal/record"
)

// The spill file: where the daemon parks aggregated counts it cannot
// keep in memory while the sample file is unwritable. PR 2's spill
// dropped the sorted tail of the key space outright — bounded memory,
// but accountable-only loss. Here the tail goes to disk as framed,
// CRC'd records instead, under a tiny commit journal, and a recovery
// pass re-merges whatever survives into the sample file. "Spilled"
// stops meaning "gone" and starts meaning "parked".
//
// Protocol (all failure-atomic, no fault-free window assumed):
//
//  1. The daemon burns a fresh sequence number for every spill
//     attempt, writes the tail as framed chunks (each payload
//     "#spill <seq>" + sample lines) in ONE SysWrite, then appends a
//     framed "spill <seq> <samples>" commit to the daemon journal.
//  2. Only after the journal commit succeeds are the keys removed
//     from the dirty map. A crash or error anywhere earlier leaves
//     the keys dirty and the on-disk frames UNCOMMITTED — recovery
//     discards them, because their samples are still accounted as
//     unflushed (adopting them would double-count).
//  3. Recovery scans the spill file, merges every committed intact
//     frame into the sample file as one framed record, and removes
//     the spill file. The merge write and the removal have no fault
//     point between them; a torn merge frame fails its checksum, so
//     re-running recovery cannot double-count.
//
// Sequence numbers are burned per attempt (never reused) so a torn
// attempt's leftover frames can never be ratified by a later
// attempt's journal commit.

// SpillFile is where the daemon parks spilled aggregates.
const SpillFile = "var/lib/oprofile/oprofiled.spill"

// DaemonJournalFile is the daemon-side commit journal: one framed
// record per committed spill batch, plus the recovery pass's
// begin markers. Like the stats file it is read back through the
// salvage layer; a torn journal is loud, not fatal.
const DaemonJournalFile = "var/lib/oprofile/oprofiled.journal"

// spillChunkKeys bounds keys per spill frame so one damaged frame
// loses at most this many keys' worth of parked samples.
const spillChunkKeys = 48

// spillHeader / journal record verbs.
const (
	spillHeaderPrefix    = "#spill "
	journalSpillPrefix   = "spill "
	journalRecoveryBegin = "recovery-begin"
)

// buildSpillFrames serializes counts for the given keys into framed
// chunks, every payload opening with "#spill <seq>".
func buildSpillFrames(seq uint64, counts map[Key]uint64, order []Key) ([]byte, error) {
	var out bytes.Buffer
	for start := 0; start < len(order); start += spillChunkKeys {
		end := start + spillChunkKeys
		if end > len(order) {
			end = len(order)
		}
		var payload bytes.Buffer
		fmt.Fprintf(&payload, "%s%d\n", spillHeaderPrefix, seq)
		if err := WriteCounts(&payload, counts, order[start:end]); err != nil {
			return nil, err
		}
		out.Write(record.Frame(payload.Bytes()))
	}
	return out.Bytes(), nil
}

// journalSpillCommit formats the framed journal record ratifying one
// spill sequence.
func journalSpillCommit(seq, samples uint64) []byte {
	return record.Frame([]byte(fmt.Sprintf("%s%d %d", journalSpillPrefix, seq, samples)))
}

// JournalRecoveryBegin formats the framed marker the recovery pass
// appends before doing anything, so a recovery that dies leaves
// durable evidence it started.
func JournalRecoveryBegin() []byte {
	return record.Frame([]byte(journalRecoveryBegin))
}

// spillFrame is one parsed spill record.
type spillFrame struct {
	seq    uint64
	counts map[Key]uint64
}

func parseSpillFrame(payload []byte) (spillFrame, error) {
	head, rest, _ := bytes.Cut(payload, []byte("\n"))
	hs := string(head)
	if !strings.HasPrefix(hs, spillHeaderPrefix) {
		return spillFrame{}, fmt.Errorf("oprofile: spill frame: bad header %q", hs)
	}
	seq, err := strconv.ParseUint(strings.TrimPrefix(hs, spillHeaderPrefix), 10, 64)
	if err != nil {
		return spillFrame{}, fmt.Errorf("oprofile: spill frame: %v", err)
	}
	counts := make(map[Key]uint64)
	if err := readCountsText(rest, counts); err != nil {
		return spillFrame{}, err
	}
	return spillFrame{seq: seq, counts: counts}, nil
}

// DaemonJournal is the parsed daemon-side commit journal.
type DaemonJournal struct {
	// Committed maps ratified spill sequence numbers to the sample
	// total their commit record claimed.
	Committed map[uint64]uint64
	// RecoveryBegun counts recovery-begin markers (one per recovery
	// attempt that got its marker to disk).
	RecoveryBegun int
	// Damaged reports salvage loss or unparseable records — the
	// journal cannot be fully trusted.
	Damaged bool
	// Missing reports that the journal file does not exist at all.
	Missing bool
}

// ReadDaemonJournal parses the journal through the salvage layer.
func ReadDaemonJournal(disk *kernel.Disk) DaemonJournal {
	j := DaemonJournal{Committed: make(map[uint64]uint64)}
	if !disk.Exists(DaemonJournalFile) {
		j.Missing = true
		return j
	}
	data, err := disk.Read(DaemonJournalFile)
	if err != nil {
		j.Damaged = true
		return j
	}
	recs, sal := record.Scan(data)
	if sal.Lossy() {
		j.Damaged = true
	}
	for _, payload := range recs {
		s := string(payload)
		switch {
		case s == journalRecoveryBegin:
			j.RecoveryBegun++
		case strings.HasPrefix(s, journalSpillPrefix):
			fields := strings.Fields(strings.TrimPrefix(s, journalSpillPrefix))
			if len(fields) != 2 {
				j.Damaged = true
				continue
			}
			seq, err1 := strconv.ParseUint(fields[0], 10, 64)
			n, err2 := strconv.ParseUint(fields[1], 10, 64)
			if err1 != nil || err2 != nil {
				j.Damaged = true
				continue
			}
			j.Committed[seq] = n
		default:
			j.Damaged = true
		}
	}
	return j
}

// SpillState is the offline view of what is parked in the spill file:
// which frames the journal ratified, what they hold, and what must be
// ignored. Both the recovery pass and the integrity assembly use it.
type SpillState struct {
	// OnDisk is the committed, intact parked counts (mergeable).
	OnDisk map[Key]uint64
	// OnDiskTotal is the sample total of OnDisk.
	OnDiskTotal uint64
	// FramesCommitted / FramesUncommitted partition intact frames by
	// whether the journal ratified their sequence number.
	FramesCommitted, FramesUncommitted int
	// Journal is the parsed commit journal.
	Journal DaemonJournal
	// Salvage is the spill file's own damage accounting.
	Salvage record.Salvage
	// Unreadable reports an EIO reading the spill file back.
	Unreadable bool
}

// ReadSpillState reads the spill file and journal back through the
// salvage layer. A missing spill file is an empty (clean) state.
func ReadSpillState(disk *kernel.Disk) SpillState {
	st := SpillState{OnDisk: make(map[Key]uint64), Journal: ReadDaemonJournal(disk)}
	if !disk.Exists(SpillFile) {
		return st
	}
	data, err := disk.Read(SpillFile)
	if err != nil {
		st.Unreadable = true
		return st
	}
	recs, sal := record.Scan(data)
	st.Salvage = sal
	for _, payload := range recs {
		fr, err := parseSpillFrame(payload)
		if err != nil {
			// Checksum-valid but unparseable: count it as damage rather
			// than failing the whole state — recovery must still be able
			// to act on the intact remainder.
			st.Salvage.DroppedRecords++
			st.Salvage.DroppedBytes += len(payload)
			continue
		}
		if _, ok := st.Journal.Committed[fr.seq]; !ok {
			st.FramesUncommitted++
			continue
		}
		st.FramesCommitted++
		for k, c := range fr.counts {
			st.OnDisk[k] += c
			st.OnDiskTotal += c
		}
	}
	return st
}

// SpillRecovery is the outcome of one spill-recovery attempt.
type SpillRecovery struct {
	// FramesMerged / FramesDiscarded: committed frames merged into the
	// sample file vs uncommitted/damaged frames dropped.
	FramesMerged, FramesDiscarded int
	// Recovered is the merged sample total per event mnemonic;
	// RecoveredTotal sums it.
	Recovered      map[string]uint64
	RecoveredTotal uint64
	// MergeErrors counts failed merge writes (spill file left in
	// place for a later attempt).
	MergeErrors int
	// JournalDamaged mirrors the journal's Damaged flag.
	JournalDamaged bool
}

// RecoverSpill merges every committed intact spill frame into the
// sample file and removes the spill file. Idempotent: a torn merge
// frame fails its checksum, and the removal happens in the same
// fault-free step as the successful write, so re-running after a
// crash cannot double-count. The returned error is non-nil only for
// a crash (the caller's recovery supervisor restarts the pass).
func RecoverSpill(m *kernel.Machine, proc *kernel.Process) (SpillRecovery, error) {
	sr := SpillRecovery{Recovered: make(map[string]uint64)}
	disk := m.Kern.Disk()
	st := ReadSpillState(disk)
	sr.JournalDamaged = st.Journal.Damaged
	if st.Unreadable {
		// Cannot read the spill back: leave it for a later attempt and
		// count the failure as a merge error.
		sr.MergeErrors++
		return sr, nil
	}
	if !disk.Exists(SpillFile) {
		return sr, nil
	}
	sr.FramesDiscarded = st.FramesUncommitted + st.Salvage.DroppedRecords
	if st.OnDiskTotal == 0 {
		// Nothing committed survives; the file is pure discard.
		disk.Remove(SpillFile)
		return sr, nil
	}
	order := make([]Key, 0, len(st.OnDisk))
	for k := range st.OnDisk {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return keyLess(order[i], order[j]) })
	var buf bytes.Buffer
	if err := WriteCounts(&buf, st.OnDisk, order); err != nil {
		sr.MergeErrors++
		return sr, nil
	}
	err := m.Kern.SysWrite(proc, SampleFile, record.Frame(buf.Bytes()))
	if err != nil {
		sr.MergeErrors++
		if errors.Is(err, kernel.ErrCrashed) {
			return sr, err
		}
		// Non-crash failure: the torn merge frame fails its checksum and
		// the spill file stays for a later attempt.
		return sr, nil
	}
	// Success: the merged record is durable. Removing the spill file is
	// an in-memory metadata operation with no fault point, so the merge
	// can never be replayed.
	disk.Remove(SpillFile)
	sr.FramesMerged = st.FramesCommitted
	for k, c := range st.OnDisk {
		sr.Recovered[k.Event.String()] += c
		sr.RecoveredTotal += c
	}
	return sr, nil
}
