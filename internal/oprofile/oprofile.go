package oprofile

import "viprof/internal/kernel"

// Config assembles a full profiling session (the opcontrol settings).
type Config struct {
	Events    []EventConfig
	BufferCap int
	Daemon    DaemonConfig
	// Registry plugs in the VIProf runtime-profiler extension; nil
	// runs plain OProfile.
	Registry Registry
	// CallGraphDepth enables call-graph sampling when > 0 (requires a
	// Registry that can walk stacks).
	CallGraphDepth int
}

// Profiler is a running profiling session: driver + daemon.
type Profiler struct {
	Driver *Driver
	Daemon *Daemon
}

// Start loads the driver, arms the counters and spawns the daemon —
// "we start VIProf just prior to benchmark launch" (§4.1).
func Start(m *kernel.Machine, cfg Config) (*Profiler, error) {
	drv, err := NewDriver(m, cfg.Events, cfg.BufferCap, cfg.Registry)
	if err != nil {
		return nil, err
	}
	drv.CallGraphDepth = cfg.CallGraphDepth
	d, err := StartDaemon(m, drv, cfg.Daemon)
	if err != nil {
		return nil, err
	}
	return &Profiler{Driver: drv, Daemon: d}, nil
}

// Shutdown stops sampling and flushes everything that is still
// buffered to disk (opcontrol --shutdown). Call it after the workload
// process has exited, before post-processing.
func (p *Profiler) Shutdown(m *kernel.Machine) {
	p.Driver.Disarm()
	p.Daemon.FinalFlush(m)
}
