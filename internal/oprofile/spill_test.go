package oprofile

// White-box tests for the spill-file protocol: frame construction,
// journal ratification, and — the property the recovery pass leans on
// — that a torn write can only ever damage the final frame of the
// file, never silently alter or invent samples in an earlier one.

import (
	"fmt"
	"math/rand"
	"testing"

	"viprof/internal/addr"
	"viprof/internal/hpc"
	"viprof/internal/kernel"
)

// makeSpillCounts builds a deterministic random key space of n keys.
func makeSpillCounts(rng *rand.Rand, n int) (map[Key]uint64, []Key) {
	counts := make(map[Key]uint64, n)
	order := make([]Key, 0, n)
	for i := 0; i < n; i++ {
		k := Key{
			Event: hpc.Event(rng.Intn(hpc.NumEvents)),
			Image: fmt.Sprintf("img%d", i),
			Proc:  "vm",
			JIT:   rng.Intn(2) == 0,
			Off:   addr.Address(0x1000 + 0x40*i),
		}
		if k.JIT {
			k.Image = JITImageName
			k.Epoch = rng.Intn(5)
		}
		counts[k] = 1 + uint64(rng.Intn(500))
		order = append(order, k)
	}
	return counts, order
}

func sumCounts(m map[Key]uint64) uint64 {
	var t uint64
	for _, c := range m {
		t += c
	}
	return t
}

// TestSpillTornSuffixSalvage is the quickcheck property: write a
// committed spill file, truncate it at every interesting cut point,
// and require that (a) every recovered count is exactly what was
// written — never invented, never altered — and (b) the recovered set
// is a whole-frame prefix of what was written: a torn suffix costs at
// most the trailing frame(s), nothing in the middle.
func TestSpillTornSuffixSalvage(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nKeys := 1 + rng.Intn(200) // spans 1..5 frames at 48 keys/frame
		counts, order := makeSpillCounts(rng, nKeys)
		const seq = 7
		frames, err := buildSpillFrames(seq, counts, order)
		if err != nil {
			t.Fatalf("seed %d: buildSpillFrames: %v", seed, err)
		}
		// Per-frame running totals: frameTotal[i] = samples in the first
		// i frames (whole-frame prefixes are the only legal salvages).
		prefixTotals := map[uint64]bool{0: true}
		var running uint64
		for start := 0; start < len(order); start += spillChunkKeys {
			end := start + spillChunkKeys
			if end > len(order) {
				end = len(order)
			}
			for _, k := range order[start:end] {
				running += counts[k]
			}
			prefixTotals[running] = true
		}
		// Cut at a random point per trial plus the exact boundaries.
		cuts := []int{0, len(frames), rng.Intn(len(frames) + 1), rng.Intn(len(frames) + 1)}
		for _, cut := range cuts {
			disk := kernel.NewDisk()
			disk.Append(DaemonJournalFile, journalSpillCommit(seq, sumCounts(counts)))
			disk.Append(SpillFile, frames[:cut])
			st := ReadSpillState(disk)
			for k, c := range st.OnDisk {
				if counts[k] != c {
					t.Fatalf("seed %d cut %d: recovered %v=%d, written %d (invented/altered sample)",
						seed, cut, k, c, counts[k])
				}
			}
			if !prefixTotals[st.OnDiskTotal] {
				t.Fatalf("seed %d cut %d: recovered total %d is not a whole-frame prefix of the written file",
					seed, cut, st.OnDiskTotal)
			}
			if cut == len(frames) && st.OnDiskTotal != running {
				t.Fatalf("seed %d: untouched file recovered %d of %d samples",
					seed, st.OnDiskTotal, running)
			}
			if st.Salvage.DroppedRecords > 1 {
				t.Fatalf("seed %d cut %d: truncation dropped %d records; only the last frame may be torn",
					seed, cut, st.Salvage.DroppedRecords)
			}
		}
	}
}

// TestSpillUncommittedDiscarded: frames whose sequence number the
// journal never ratified are parked debris, not samples — their keys
// are still accounted as unflushed by the daemon that wrote them, so
// counting them would double-count.
func TestSpillUncommittedDiscarded(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts, order := makeSpillCounts(rng, 60) // two frames
	frames, err := buildSpillFrames(3, counts, order)
	if err != nil {
		t.Fatalf("buildSpillFrames: %v", err)
	}
	disk := kernel.NewDisk()
	disk.Append(SpillFile, frames)
	st := ReadSpillState(disk)
	if st.FramesUncommitted != 2 || st.FramesCommitted != 0 {
		t.Errorf("uncommitted=%d committed=%d, want 2/0", st.FramesUncommitted, st.FramesCommitted)
	}
	if st.OnDiskTotal != 0 || len(st.OnDisk) != 0 {
		t.Errorf("uncommitted frames contributed %d samples", st.OnDiskTotal)
	}
}

// TestSpillSeqBurn: a torn attempt's leftover frames must never be
// ratified by a later attempt's commit. Frames from burned sequence 4
// share the file with committed sequence 5; only sequence 5's samples
// may surface.
func TestSpillSeqBurn(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	stale, staleOrder := makeSpillCounts(rng, 10)
	fresh, freshOrder := makeSpillCounts(rand.New(rand.NewSource(3)), 10)
	staleFrames, err1 := buildSpillFrames(4, stale, staleOrder)
	freshFrames, err2 := buildSpillFrames(5, fresh, freshOrder)
	if err1 != nil || err2 != nil {
		t.Fatalf("buildSpillFrames: %v / %v", err1, err2)
	}
	disk := kernel.NewDisk()
	disk.Append(SpillFile, staleFrames)
	disk.Append(SpillFile, freshFrames)
	disk.Append(DaemonJournalFile, journalSpillCommit(5, sumCounts(fresh)))
	st := ReadSpillState(disk)
	if st.FramesCommitted != 1 || st.FramesUncommitted != 1 {
		t.Errorf("committed=%d uncommitted=%d, want 1/1", st.FramesCommitted, st.FramesUncommitted)
	}
	if st.OnDiskTotal != sumCounts(fresh) {
		t.Errorf("recovered %d, want only the committed attempt's %d", st.OnDiskTotal, sumCounts(fresh))
	}
	for k := range st.OnDisk {
		if _, stale := stale[k]; stale {
			t.Errorf("burned-sequence key %v surfaced", k)
		}
	}
}

// TestDaemonJournalReader: the journal reader classifies commit
// records, recovery markers, and garbage, and flags damage without
// giving up on the intact remainder.
func TestDaemonJournalReader(t *testing.T) {
	disk := kernel.NewDisk()
	if j := ReadDaemonJournal(disk); !j.Missing {
		t.Error("absent journal not reported Missing")
	}
	disk.Append(DaemonJournalFile, journalSpillCommit(1, 100))
	disk.Append(DaemonJournalFile, JournalRecoveryBegin())
	disk.Append(DaemonJournalFile, journalSpillCommit(2, 50))
	j := ReadDaemonJournal(disk)
	if j.Damaged || j.Missing {
		t.Errorf("clean journal read damaged=%v missing=%v", j.Damaged, j.Missing)
	}
	if j.RecoveryBegun != 1 || j.Committed[1] != 100 || j.Committed[2] != 50 {
		t.Errorf("journal misread: %+v", j)
	}
	// A torn tail record is damage, but earlier commits survive.
	disk.Append(DaemonJournalFile, journalSpillCommit(3, 25)[:5])
	j = ReadDaemonJournal(disk)
	if !j.Damaged {
		t.Error("torn journal tail not flagged Damaged")
	}
	if j.Committed[1] != 100 || j.Committed[2] != 50 {
		t.Errorf("torn tail destroyed earlier commits: %+v", j)
	}
	if _, ok := j.Committed[3]; ok {
		t.Error("torn commit record was ratified")
	}
}
