package oprofile

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"viprof/internal/record"
)

// Integrity is the report section that answers "can I trust these
// numbers?". It is assembled entirely from on-disk artifacts — salvage
// accounting from the sample file, the daemon's persisted self-counters,
// per-VM code-map damage — so it reflects what actually survived, not
// what the in-memory pipeline believed. The profiler's contract under
// partial failure is degrade-don't-lie: every lost sample, torn record,
// failed flush, and crashed writer must be visible here.

// PersistedStats is the daemon's self-reported view of the run, parsed
// back from DaemonStatsFile. A nil PersistedStats (file missing or
// torn) means the daemon did not shut down cleanly.
type PersistedStats struct {
	NMIs, Logged, Dropped                        uint64
	SamplesLogged, Flushes, FlushErrors, Spilled uint64
	Unflushed                                    uint64
	// Spilled splits into what was parked on disk under a journal
	// commit (recoverable) vs dropped past the hard cap (gone).
	SpilledOnDisk, SpilledLost uint64
	// SpilledLostByEvent attributes the lost portion per event mnemonic.
	SpilledLostByEvent map[string]uint64
	// SpillBatches / SpillErrors / JournalErrors are the spill
	// protocol's own self-counters.
	SpillBatches, SpillErrors, JournalErrors uint64
	// PerCPU maps a base counter name ("nmis", "logged", "dropped",
	// "samples_logged") to its per-CPU values, parsed from
	// `<name>.cpu<N>` lines. Nil for single-core runs, whose stats
	// files carry no per-CPU section.
	PerCPU map[string]map[int]uint64
	Clean  bool
}

// ReadDaemonStats parses the framed stats record; nil if the file is
// torn, lossy, or structurally wrong (all equivalent: not trustworthy).
func ReadDaemonStats(data []byte) *PersistedStats {
	recs, sal := record.Scan(data)
	if sal.Lossy() || len(recs) != 1 {
		return nil
	}
	ps := &PersistedStats{SpilledLostByEvent: make(map[string]uint64)}
	for _, line := range strings.Split(string(recs[0]), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil
		}
		if ev, found := strings.CutPrefix(k, "spilled_lost."); found {
			ps.SpilledLostByEvent[ev] = n
			continue
		}
		if base, rest, found := strings.Cut(k, ".cpu"); found && base != "" {
			if ci, cerr := strconv.Atoi(rest); cerr == nil {
				if ps.PerCPU == nil {
					ps.PerCPU = make(map[string]map[int]uint64)
				}
				if ps.PerCPU[base] == nil {
					ps.PerCPU[base] = make(map[int]uint64)
				}
				ps.PerCPU[base][ci] = n
				continue
			}
		}
		switch k {
		case "nmis":
			ps.NMIs = n
		case "logged":
			ps.Logged = n
		case "dropped":
			ps.Dropped = n
		case "samples_logged":
			ps.SamplesLogged = n
		case "flushes":
			ps.Flushes = n
		case "flush_errors":
			ps.FlushErrors = n
		case "spilled":
			ps.Spilled = n
		case "spilled_on_disk":
			ps.SpilledOnDisk = n
		case "spilled_lost":
			ps.SpilledLost = n
		case "spill_batches":
			ps.SpillBatches = n
		case "spill_errors":
			ps.SpillErrors = n
		case "journal_errors":
			ps.JournalErrors = n
		case "unflushed":
			ps.Unflushed = n
		case "clean":
			ps.Clean = n != 0
		}
	}
	return ps
}

// MapIntegrity is the per-VM code-map damage report.
type MapIntegrity struct {
	PID  int
	Proc string

	// Files is map files read; OrphanTmp counts leftover .tmp files (a
	// crash struck between the data write and the atomic rename).
	Files, OrphanTmp int
	// Entries is intact map entries recovered across the chain.
	Entries int
	// Salvage accounting summed over the chain's files.
	DroppedRecords, DroppedBytes int
	// TornFiles is files with damage or a missing end-trailer.
	TornFiles int
	// UnreadableFiles is map files that exist but failed to read back
	// (EIO on the offline tools' side); their epochs are poisoned.
	UnreadableFiles int

	// Quarantined counts damaged temp files the recovery pass set aside
	// as *.quarantined evidence rather than adopting or deleting.
	Quarantined int
	// MissingCommitted counts epochs the agent's commit journal ratified
	// but whose map file is absent from the directory listing — either
	// the file was destroyed or the listing itself is damaged; the
	// resolver poisons those epochs either way.
	MissingCommitted int
	// JournalDamaged counts commit-journal damage (torn journal, or an
	// agent stats file that exists but cannot be read back, which
	// prevents verifying the journal).
	JournalDamaged int
	// JournalErrors is the agent's self-reported count of failed
	// commit-journal appends.
	JournalErrors int

	// AgentStatsPresent/AgentClean mirror the agent's persisted
	// self-counters; absent means the VM died before OnExit.
	AgentStatsPresent, AgentClean bool
	// MapWriteErrors/DeferredEntries are the agent's self-reported write
	// failures and the entries it carried forward into later maps.
	MapWriteErrors, DeferredEntries int
}

// Degraded reports whether this VM's persisted code maps lost anything.
func (mi MapIntegrity) Degraded() bool {
	return mi.OrphanTmp > 0 || mi.DroppedRecords > 0 || mi.DroppedBytes > 0 ||
		mi.TornFiles > 0 || mi.UnreadableFiles > 0 ||
		mi.Quarantined > 0 || mi.MissingCommitted > 0 ||
		mi.JournalDamaged > 0 || mi.JournalErrors > 0 ||
		!mi.AgentStatsPresent || !mi.AgentClean ||
		mi.MapWriteErrors > 0
}

// SpillIntegrity is the per-event accounting of spilled samples: what
// recovery merged back vs what the hard cap dropped for good.
type SpillIntegrity struct {
	Event           string
	Recovered, Lost uint64
}

// Integrity is the whole-run degradation summary attached to a Report.
type Integrity struct {
	// SampleFileMissing: no sample data survived at all.
	SampleFileMissing bool
	// Salvage accounting for the sample file.
	SampleRecords, SampleDroppedRecords, SampleDroppedBytes int
	// Stats is the daemon's persisted self-view; nil = unclean shutdown.
	Stats *PersistedStats
	// UnresolvedJIT counts JIT samples the durable resolver refused to
	// attribute (informational: clean runs also have a small number from
	// compilation races, so this alone does not mark the run degraded).
	UnresolvedJIT uint64
	// Maps is the per-VM code-map report.
	Maps []MapIntegrity
	// Spill is the per-event spilled-sample accounting (recovered vs
	// lost), sorted by event mnemonic.
	Spill []SpillIntegrity
	// SpillOnDisk is the committed sample total still parked in the
	// spill file at report time (recovery has not merged it yet).
	SpillOnDisk uint64
	// SpillJournalDamaged reports a torn/unparseable daemon journal.
	SpillJournalDamaged bool
	// Recovery is the recovery pass's persisted decision record; nil if
	// no recovery ran (or its stats never reached disk).
	Recovery *RecoveryStats
	// RecoveryIncomplete reports durable evidence a recovery attempt
	// began (journal marker) without a surviving decision record.
	RecoveryIncomplete bool
	// Retention is the retention pass's persisted ledger (quarantined
	// evidence kept/pruned); nil if no pass has ever persisted one.
	Retention *RetentionStats
	// RetentionDamaged reports the ledger file exists but no intact
	// record survives in it.
	RetentionDamaged bool
}

// Degraded reports whether any persisted data was lost, damaged, or
// unaccounted for anywhere in the pipeline.
func (in *Integrity) Degraded() bool {
	if in == nil {
		return false
	}
	if in.SampleFileMissing || in.SampleDroppedRecords > 0 || in.SampleDroppedBytes > 0 {
		return true
	}
	if in.Stats == nil || !in.Stats.Clean || in.Stats.FlushErrors > 0 ||
		in.Stats.Spilled > 0 || in.Stats.Unflushed > 0 || in.Stats.Dropped > 0 ||
		in.Stats.SpillErrors > 0 || in.Stats.JournalErrors > 0 {
		return true
	}
	if in.SpillOnDisk > 0 || in.SpillJournalDamaged || in.RecoveryIncomplete {
		return true
	}
	for _, si := range in.Spill {
		if si.Recovered > 0 || si.Lost > 0 {
			return true
		}
	}
	if in.Recovery != nil && (in.Recovery.AnyAction() || !in.Recovery.Clean) {
		return true
	}
	// Retention pruning itself is housekeeping, not data loss (the
	// evidence it removes marked an *earlier* run degraded); only a
	// retention failure — unpersisted decisions, a damaged ledger —
	// degrades this run.
	if in.RetentionDamaged {
		return true
	}
	if in.Retention != nil && (in.Retention.StatsErrors > 0 || in.Retention.PriorDamaged || !in.Retention.Clean) {
		return true
	}
	for _, mi := range in.Maps {
		if mi.Degraded() {
			return true
		}
	}
	return false
}

// FormatIntegrity renders the section the way vipreport prints it.
func FormatIntegrity(w io.Writer, in *Integrity) error {
	if in == nil {
		return nil
	}
	status := "OK — no data loss detected"
	if in.Degraded() {
		status = "DEGRADED — losses accounted below"
	}
	if _, err := fmt.Fprintf(w, "\nIntegrity: %s\n", status); err != nil {
		return err
	}
	switch {
	case in.SampleFileMissing:
		fmt.Fprintf(w, "  sample file: MISSING\n")
	case in.SampleDroppedRecords > 0 || in.SampleDroppedBytes > 0:
		fmt.Fprintf(w, "  sample file: %d records intact, %d dropped (%d bytes)\n",
			in.SampleRecords, in.SampleDroppedRecords, in.SampleDroppedBytes)
	default:
		fmt.Fprintf(w, "  sample file: %d records intact\n", in.SampleRecords)
	}
	if in.Stats == nil {
		fmt.Fprintf(w, "  daemon: no clean shutdown record (crashed or stats file damaged)\n")
	} else {
		fmt.Fprintf(w, "  daemon: %d NMIs, %d logged, %d dropped at buffer; %d flushes, %d flush errors, %d spilled, %d unflushed\n",
			in.Stats.NMIs, in.Stats.Logged, in.Stats.Dropped,
			in.Stats.Flushes, in.Stats.FlushErrors, in.Stats.Spilled, in.Stats.Unflushed)
		if in.Stats.Spilled > 0 || in.Stats.SpillErrors > 0 || in.Stats.JournalErrors > 0 {
			fmt.Fprintf(w, "  spill: %d parked on disk, %d lost past hard cap; %d batches, %d spill errors, %d journal errors\n",
				in.Stats.SpilledOnDisk, in.Stats.SpilledLost,
				in.Stats.SpillBatches, in.Stats.SpillErrors, in.Stats.JournalErrors)
		}
	}
	for _, si := range in.Spill {
		fmt.Fprintf(w, "  spill %s: %d recovered, %d lost\n", si.Event, si.Recovered, si.Lost)
	}
	if in.SpillOnDisk > 0 {
		fmt.Fprintf(w, "  spill: %d committed samples still parked (recovery pending)\n", in.SpillOnDisk)
	}
	if in.SpillJournalDamaged {
		fmt.Fprintf(w, "  spill: daemon journal DAMAGED — uncommitted frames discarded conservatively\n")
	}
	if in.RecoveryIncomplete {
		fmt.Fprintf(w, "  recovery: INCOMPLETE — began but left no decision record\n")
	}
	if in.RetentionDamaged {
		fmt.Fprintf(w, "  retention: ledger DAMAGED — age tracking restarted\n")
	}
	if rt := in.Retention; rt != nil && rt.AnyAction() {
		fmt.Fprintf(w, "  retention: %d scanned, %d kept (%d bytes), %d pruned (%d bytes: %d by age, %d by count, %d by size); %d ledger errors\n",
			rt.Scanned, rt.Kept, rt.KeptBytes, rt.Pruned, rt.PrunedBytes,
			rt.AgePruned, rt.CountPruned, rt.SizePruned, rt.StatsErrors)
	}
	if r := in.Recovery; r != nil && (r.AnyAction() || !r.Clean) {
		fmt.Fprintf(w, "  recovery: %d adopted, %d discarded, %d quarantined, %d failed; %d spill frames merged, %d discarded (%d samples recovered); %d merge errors, %d journals damaged, %d marker errors, %d restarts\n",
			r.Adopted, r.Discarded, r.Quarantined, r.Failed,
			r.SpillFramesMerged, r.SpillFramesDiscarded, r.SpillRecoveredTotal,
			r.SpillMergeErrors, r.JournalsDamaged, r.MarkerErrors, r.Restarts)
	}
	if in.UnresolvedJIT > 0 {
		fmt.Fprintf(w, "  resolver: %d JIT samples left unresolved rather than guessed\n", in.UnresolvedJIT)
	}
	for _, mi := range in.Maps {
		state := "clean"
		if mi.Degraded() {
			state = "degraded"
		}
		fmt.Fprintf(w, "  maps %s/%d: %s — %d files, %d entries", mi.Proc, mi.PID, state, mi.Files, mi.Entries)
		if mi.TornFiles > 0 || mi.DroppedRecords > 0 {
			fmt.Fprintf(w, ", %d torn files (%d records / %d bytes dropped)",
				mi.TornFiles, mi.DroppedRecords, mi.DroppedBytes)
		}
		if mi.UnreadableFiles > 0 {
			fmt.Fprintf(w, ", %d unreadable files (epochs poisoned)", mi.UnreadableFiles)
		}
		if mi.OrphanTmp > 0 {
			fmt.Fprintf(w, ", %d orphan tmp", mi.OrphanTmp)
		}
		if mi.Quarantined > 0 {
			fmt.Fprintf(w, ", %d quarantined", mi.Quarantined)
		}
		if mi.MissingCommitted > 0 {
			fmt.Fprintf(w, ", %d committed epochs missing (poisoned)", mi.MissingCommitted)
		}
		if mi.JournalDamaged > 0 || mi.JournalErrors > 0 {
			fmt.Fprintf(w, ", commit journal damaged (%d damage, %d append errors)", mi.JournalDamaged, mi.JournalErrors)
		}
		if mi.MapWriteErrors > 0 {
			fmt.Fprintf(w, ", %d write errors (%d entries deferred)", mi.MapWriteErrors, mi.DeferredEntries)
		}
		if !mi.AgentStatsPresent {
			fmt.Fprintf(w, ", agent died before exit")
		}
		fmt.Fprintln(w)
	}
	return nil
}
