// Package oprofile implements the baseline system-wide profiler the
// paper extends (OProfile 0.9.1, §3): a kernel driver that programs the
// hardware performance counters and services the resulting NMIs, a
// user-level daemon that drains the driver's sample buffer to sample
// files on disk, and opreport-style post-processing. Its known
// limitation — samples in dynamically generated code are logged as
// anonymous-memory black boxes — is exactly what VIProf (internal/core)
// fixes by plugging a JIT registry and epoch tags into this package's
// extension points.
package oprofile

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"viprof/internal/addr"
	"viprof/internal/hpc"
	"viprof/internal/record"
)

// Sample is one attributed counter-overflow event, the unit the daemon
// logs: "OProfile ... identifies the corresponding binary or library
// [and] computes the offset into the corresponding object file" (§3).
type Sample struct {
	Event  hpc.Event
	PID    int
	Proc   string // process name at sampling time
	Kernel bool   // privilege mode
	PC     addr.Address

	// Image/Offset identify file-backed code. For anonymous memory,
	// Image is empty and AnonStart/AnonEnd give the region.
	Image  string
	Offset addr.Address

	AnonStart, AnonEnd addr.Address

	// JIT marks a sample inside a VM-registered JIT region; Epoch is
	// the GC execution epoch it was taken in. Only the VIProf-extended
	// pipeline sets these (plain OProfile has no JIT registry).
	JIT   bool
	Epoch int

	// CPU is the core the overflow fired on. The driver shards its ring
	// buffer by this id so the daemon can drain shards concurrently.
	CPU int
}

// Anonymous reports whether the sample fell in anonymous memory that no
// JIT registry claimed.
func (s Sample) Anonymous() bool { return s.Image == "" && !s.JIT }

// AnonName formats the anonymous-region pseudo-image name the way
// OProfile's reports show it: "anon (range:0xA-0xB),proc".
func (s Sample) AnonName() string {
	return fmt.Sprintf("anon (range:%s-%s),%s", s.AnonStart, s.AnonEnd, s.Proc)
}

// JITImageName is the pseudo-image the VIProf pipeline logs JIT samples
// under (Figure 1's "JIT.App" rows).
const JITImageName = "JIT.App"

// Key is the aggregation key the daemon accumulates sample counts
// under; one key maps to one line in a sample file.
type Key struct {
	Event hpc.Event
	Image string // image name, AnonName(), or JITImageName
	Proc  string
	JIT   bool
	Epoch int
	// CPU is the core the sample was taken on; the report path folds it
	// away for aggregate views and keeps it for per-CPU breakdowns.
	CPU int
	// Off is the image offset for file-backed samples and the absolute
	// PC for anonymous/JIT samples (JIT code maps use absolute
	// addresses).
	Off addr.Address
}

// KeyOf reduces a sample to its aggregation key.
func KeyOf(s Sample) Key {
	switch {
	case s.JIT:
		return Key{Event: s.Event, Image: JITImageName, Proc: s.Proc, JIT: true,
			Epoch: s.Epoch, CPU: s.CPU, Off: s.PC}
	case s.Image != "":
		return Key{Event: s.Event, Image: s.Image, Proc: s.Proc, CPU: s.CPU, Off: s.Offset}
	default:
		return Key{Event: s.Event, Image: s.AnonName(), Proc: s.Proc, CPU: s.CPU, Off: s.PC}
	}
}

// SampleFile is the on-disk path prefix for sample data.
const SampleFile = "var/lib/oprofile/samples.log"

// WriteCounts serializes aggregated counts as sample-file lines:
//
//	event<TAB>jit<TAB>epoch<TAB>offset<TAB>count<TAB>cpu<TAB>proc<TAB>image
//
// Image goes last because it may contain spaces and commas. The cpu
// field was appended for SMP machines; readers accept the older
// 7-field layout and treat those lines as CPU 0.
func WriteCounts(w io.Writer, counts map[Key]uint64, order []Key) error {
	bw := bufio.NewWriter(w)
	for _, k := range order {
		c := counts[k]
		if c == 0 {
			continue
		}
		jit := 0
		if k.JIT {
			jit = 1
		}
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			k.Event, jit, k.Epoch, uint64(k.Off), c, k.CPU, k.Proc, k.Image); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCounts parses a sample file, summing duplicate keys (the daemon
// appends deltas across flushes). It auto-detects the durable framed
// format (each flush is one checksummed record, see internal/record)
// and falls back to legacy plain-text parsing; a framed file with any
// damage is a hard error here — use ReadCountsSalvage to recover the
// intact records with loss accounting.
func ReadCounts(r io.Reader) (map[Key]uint64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if record.IsFramed(data) {
		counts, sal, err := ReadCountsSalvage(data)
		if err != nil {
			return nil, err
		}
		if sal.Lossy() {
			return nil, fmt.Errorf("oprofile: sample file corrupt: %d records dropped (%d bytes)",
				sal.DroppedRecords, sal.DroppedBytes)
		}
		return counts, nil
	}
	counts := make(map[Key]uint64)
	if err := readCountsText(data, counts); err != nil {
		return nil, err
	}
	return counts, nil
}

// ReadCountsSalvage parses a sample file, recovering every intact
// framed record and accounting for damage instead of failing. Legacy
// plain-text files parse as a single clean pseudo-record.
func ReadCountsSalvage(data []byte) (map[Key]uint64, record.Salvage, error) {
	counts := make(map[Key]uint64)
	if len(data) == 0 {
		return counts, record.Salvage{}, nil
	}
	if !record.IsFramed(data) {
		if err := readCountsText(data, counts); err != nil {
			return nil, record.Salvage{}, err
		}
		return counts, record.Salvage{Records: 1}, nil
	}
	recs, sal := record.Scan(data)
	for _, payload := range recs {
		// A checksum-valid record that fails to parse is a writer bug,
		// not disk damage: fail hard rather than salvage it away.
		if err := readCountsText(payload, counts); err != nil {
			return nil, sal, err
		}
	}
	return counts, sal, nil
}

// ParseCountsText parses plain sample-file lines (the WriteCounts
// format) into counts, summing duplicate keys. It is the payload parser
// for contexts where framing is handled out of line — the fleet wire
// protocol ships one WriteCounts body per framed delta record.
func ParseCountsText(data []byte, counts map[Key]uint64) error {
	return readCountsText(data, counts)
}

// readCountsText parses plain sample-file lines into counts.
func readCountsText(data []byte, counts map[Key]uint64) error {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		parts := strings.SplitN(text, "\t", 8)
		// 7-field lines predate the per-CPU pipeline: no cpu column,
		// proc/image shifted left. Parse them as CPU 0.
		cpu := 0
		procIdx := 6
		switch len(parts) {
		case 8:
			procIdx = 6
		case 7:
			procIdx = 5
		default:
			return fmt.Errorf("oprofile: sample line %d: %d fields", line, len(parts))
		}
		ev, err1 := strconv.Atoi(parts[0])
		jit, err2 := strconv.Atoi(parts[1])
		epoch, err3 := strconv.Atoi(parts[2])
		off, err4 := strconv.ParseUint(parts[3], 10, 64)
		cnt, err5 := strconv.ParseUint(parts[4], 10, 64)
		errs := []error{err1, err2, err3, err4, err5}
		if len(parts) == 8 {
			var err6 error
			cpu, err6 = strconv.Atoi(parts[5])
			errs = append(errs, err6)
		}
		for _, err := range errs {
			if err != nil {
				return fmt.Errorf("oprofile: sample line %d: %v", line, err)
			}
		}
		k := Key{
			Event: hpc.Event(ev),
			Image: parts[procIdx+1],
			Proc:  parts[procIdx],
			JIT:   jit != 0,
			Epoch: epoch,
			CPU:   cpu,
			Off:   addr.Address(off),
		}
		counts[k] += cnt
	}
	return sc.Err()
}
