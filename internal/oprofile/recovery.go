package oprofile

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/record"
)

// RecoveryStats is the persisted outcome of the startup recovery pass
// (core.RunRecovery): every adopt/discard/quarantine decision over
// orphan temp files, every spill frame merged or discarded, and how
// many times the pass itself had to restart after being struck by a
// fault. Written as one framed record per completed attempt at
// RecoveryStatsFile; the LAST intact record is authoritative (earlier
// torn records are the expected debris of restarted attempts).
type RecoveryStats struct {
	// Orphan-temp decisions: Adopted (complete temp renamed into
	// place), Discarded (stale temp whose commit was already durable),
	// Quarantined (damaged temp set aside as evidence), Failed (temp
	// that could not be read, salvaged, or renamed).
	Adopted, Discarded, Quarantined, Failed int
	// Spill outcomes (see spill.go).
	SpillFramesMerged, SpillFramesDiscarded int
	// SpillRecovered is the merged sample total per event mnemonic;
	// SpillRecoveredTotal sums it.
	SpillRecovered      map[string]uint64
	SpillRecoveredTotal uint64
	// SpillMergeErrors counts failed merge writes.
	SpillMergeErrors int
	// JournalsDamaged counts damaged commit journals (agent or daemon)
	// seen while deciding.
	JournalsDamaged int
	// MarkerErrors counts failed durable-evidence writes (the
	// recovery-begin marker or the stats record itself); each one
	// forced a supervisor restart.
	MarkerErrors int
	// Restarts counts attempts abandoned to an injected fault before
	// this (final) one completed.
	Restarts int
	// Clean reports the pass completed.
	Clean bool
}

// RecoveryStatsFile is where the recovery pass persists its decisions.
const RecoveryStatsFile = "var/lib/viprof/recovery.stats"

// AnyAction reports whether recovery did (or failed to do) anything —
// every one of these implies the run before it was damaged, so a
// non-trivial recovery marks the run degraded even where it healed the
// artifacts so well that nothing else shows.
func (rs *RecoveryStats) AnyAction() bool {
	if rs == nil {
		return false
	}
	return rs.Adopted+rs.Discarded+rs.Quarantined+rs.Failed+
		rs.SpillFramesMerged+rs.SpillFramesDiscarded+rs.SpillMergeErrors+
		rs.JournalsDamaged+rs.MarkerErrors+rs.Restarts > 0
}

// Payload serializes the stats as key=value lines (the caller frames
// the result with record.Frame).
func (rs *RecoveryStats) Payload() []byte {
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "adopted=%d\ndiscarded=%d\nquarantined=%d\nfailed=%d\n",
		rs.Adopted, rs.Discarded, rs.Quarantined, rs.Failed)
	fmt.Fprintf(&buf, "spill_frames_merged=%d\nspill_frames_discarded=%d\nspill_recovered_total=%d\nspill_merge_errors=%d\n",
		rs.SpillFramesMerged, rs.SpillFramesDiscarded, rs.SpillRecoveredTotal, rs.SpillMergeErrors)
	fmt.Fprintf(&buf, "journals_damaged=%d\nmarker_errors=%d\nrestarts=%d\n",
		rs.JournalsDamaged, rs.MarkerErrors, rs.Restarts)
	events := make([]string, 0, len(rs.SpillRecovered))
	for ev := range rs.SpillRecovered {
		events = append(events, ev)
	}
	sort.Strings(events)
	for _, ev := range events {
		fmt.Fprintf(&buf, "spill_recovered.%s=%d\n", ev, rs.SpillRecovered[ev])
	}
	fmt.Fprintf(&buf, "clean=1\n")
	return buf.Bytes()
}

// ReadRecoveryStats parses the persisted recovery record. The last
// intact record wins; nil if no intact record survives (recovery never
// completed, or its stats write was destroyed).
func ReadRecoveryStats(data []byte) *RecoveryStats {
	recs, _ := record.Scan(data)
	if len(recs) == 0 {
		return nil
	}
	payload := recs[len(recs)-1]
	rs := &RecoveryStats{SpillRecovered: make(map[string]uint64)}
	for _, line := range strings.Split(string(payload), "\n") {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, "=")
		if !ok {
			return nil
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return nil
		}
		if ev, found := strings.CutPrefix(k, "spill_recovered."); found {
			rs.SpillRecovered[ev] = n
			continue
		}
		switch k {
		case "adopted":
			rs.Adopted = int(n)
		case "discarded":
			rs.Discarded = int(n)
		case "quarantined":
			rs.Quarantined = int(n)
		case "failed":
			rs.Failed = int(n)
		case "spill_frames_merged":
			rs.SpillFramesMerged = int(n)
		case "spill_frames_discarded":
			rs.SpillFramesDiscarded = int(n)
		case "spill_recovered_total":
			rs.SpillRecoveredTotal = n
		case "spill_merge_errors":
			rs.SpillMergeErrors = int(n)
		case "journals_damaged":
			rs.JournalsDamaged = int(n)
		case "marker_errors":
			rs.MarkerErrors = int(n)
		case "restarts":
			rs.Restarts = int(n)
		case "clean":
			rs.Clean = n != 0
		}
	}
	return rs
}
