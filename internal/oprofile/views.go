package oprofile

import (
	"fmt"
	"io"
	"sort"

	"viprof/internal/addr"
	"viprof/internal/hpc"
)

// Additional report views mirroring opreport's:
//
//   - the image summary (opreport with no arguments): one row per
//     binary image, sorted by the primary event;
//   - the details view (opreport -d): per-offset sample counts within
//     one image, the finest granularity the sample files hold.

// ImageSummary aggregates the report's rows by image. The aggregation
// and primary-event ordering are computed once with the report (see
// ensureIndex); each call returns a fresh copy of the cached rows.
func (r *Report) ImageSummary() []Row {
	r.ensureIndex()
	out := make([]Row, len(r.imgRows))
	copy(out, r.imgRows)
	return out
}

// FormatImageSummary renders the image summary (opreport's default
// output shape).
func FormatImageSummary(w io.Writer, r *Report, maxRows int) error {
	for _, ev := range r.Events {
		if _, err := fmt.Fprintf(w, "%-9s", eventLabel(ev)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "Image name"); err != nil {
		return err
	}
	rows := r.ImageSummary()
	if maxRows > 0 && maxRows < len(rows) {
		rows = rows[:maxRows]
	}
	for _, row := range rows {
		for _, ev := range r.Events {
			if _, err := fmt.Fprintf(w, "%-9.4f", r.Percent(row, ev)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, row.Image); err != nil {
			return err
		}
	}
	return nil
}

// Detail is one offset's sample count inside an image (opreport -d).
type Detail struct {
	Off    addr.Address
	Symbol string
	Counts [hpc.NumEvents]uint64
}

// DetailsFor extracts per-offset counts for every key whose resolved
// display image matches imageName. Offsets within a symbol show where
// inside the function the samples landed — the "pinpoint the method"
// granularity §3 describes, one level finer.
func DetailsFor(counts map[Key]uint64, res Resolver, imageName string) []Detail {
	agg := make(map[addr.Address]*Detail)
	for k, c := range counts {
		img, sym := res.Resolve(k)
		if img != imageName {
			continue
		}
		d, ok := agg[k.Off]
		if !ok {
			d = &Detail{Off: k.Off, Symbol: sym}
			agg[k.Off] = d
		}
		d.Counts[k.Event] += c
	}
	out := make([]Detail, 0, len(agg))
	for _, d := range agg {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Off < out[j].Off })
	return out
}

// FormatDetails renders the details view.
func FormatDetails(w io.Writer, details []Detail, events []hpc.Event, maxRows int) error {
	if _, err := fmt.Fprintf(w, "%-12s", "offset"); err != nil {
		return err
	}
	for _, ev := range events {
		if _, err := fmt.Fprintf(w, "%-10s", ev.String()[:min(9, len(ev.String()))]); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, "symbol"); err != nil {
		return err
	}
	if maxRows > 0 && maxRows < len(details) {
		details = details[:maxRows]
	}
	for _, d := range details {
		if _, err := fmt.Fprintf(w, "%-12s", d.Off); err != nil {
			return err
		}
		for _, ev := range events {
			if _, err := fmt.Fprintf(w, "%-10d", d.Counts[ev]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w, d.Symbol); err != nil {
			return err
		}
	}
	return nil
}
