package oprofile

import (
	"sort"

	"viprof/internal/kernel"
)

// The user-level daemon. "Periodically, this daemon processes the
// sample buffer and writes the samples to disk" (§3). It is "the main
// source of profiling overhead, [so] extra care must be taken to ensure
// minimal work is done by this daemon".

// DaemonConfig tunes the daemon.
type DaemonConfig struct {
	// WakeCycles is the periodic wake interval (default ~100 ms of
	// simulated time).
	WakeCycles uint64
	// BatchMax bounds samples processed per wake (0 = all).
	BatchMax int
}

// Daemon drains the driver buffer, aggregates counts, and appends
// deltas to the sample file on the simulated disk.
type Daemon struct {
	drv *Driver
	cfg DaemonConfig

	proc *kernel.Process

	counts map[Key]uint64 // lifetime aggregate (also what gets flushed)
	dirty  map[Key]uint64 // deltas since last disk flush

	// perSampleOps is the daemon-side logging cost per sample.
	perSampleOps int

	samplesLogged uint64
	flushes       uint64
	stopped       bool
}

// StartDaemon spawns the oprofiled process. It runs as a system daemon
// (it never keeps the machine alive) and flushes remaining samples when
// the last workload process exits.
func StartDaemon(m *kernel.Machine, drv *Driver, cfg DaemonConfig) (*Daemon, error) {
	if cfg.WakeCycles == 0 {
		cfg.WakeCycles = 340_000 // 100 ms at the simulated 3.4 MHz clock
	}
	d := &Daemon{
		drv:          drv,
		cfg:          cfg,
		counts:       make(map[Key]uint64),
		dirty:        make(map[Key]uint64),
		perSampleOps: 420,
	}
	proc, err := m.Kern.NewProcess("oprofiled", d)
	if err != nil {
		return nil, err
	}
	proc.Daemon = true
	d.proc = proc
	drv.OnWatermark = func() { m.Kern.Wake(proc) }
	return d, nil
}

// Step implements kernel.Executor: wake, drain, aggregate, flush,
// sleep.
func (d *Daemon) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	if d.stopped {
		return kernel.StepExit
	}
	d.processBatch(m, d.cfg.BatchMax)
	m.Kern.Sleep(p, d.cfg.WakeCycles)
	return kernel.StepBlocked
}

// processBatch drains and logs up to max samples, then flushes deltas
// to disk. Runs in the daemon's (or, during final flush, the caller's)
// process context.
func (d *Daemon) processBatch(m *kernel.Machine, max int) {
	samples := d.drv.Drain(max)
	if len(samples) > 0 {
		// Daemon-side logging cost: read the buffer via the module,
		// then per-sample accounting in user space at oprofiled's
		// (unmodelled) text — charged as kernel read + user aggregate.
		m.Kern.ExecKernel("op_read_buffer", 40+len(samples)*d.perSampleOps/4, 1)
		for _, s := range samples {
			k := KeyOf(s)
			d.counts[k]++
			d.dirty[k]++
			d.samplesLogged++
		}
	}
	if len(d.dirty) > 0 {
		d.flush(m)
	}
}

// flush appends dirty aggregates to the sample file.
func (d *Daemon) flush(m *kernel.Machine) {
	order := make([]Key, 0, len(d.dirty))
	for k := range d.dirty {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return keyLess(order[i], order[j]) })
	var buf writerBuf
	if err := WriteCounts(&buf, d.dirty, order); err != nil {
		return // simulated disk never errors; keep the daemon alive anyway
	}
	m.Kern.SysWrite(d.proc, SampleFile, buf.b)
	d.dirty = make(map[Key]uint64)
	d.flushes++
}

// FinalFlush drains everything left and writes it out; call after the
// workload exits (opcontrol --shutdown).
func (d *Daemon) FinalFlush(m *kernel.Machine) {
	d.processBatch(m, 0)
	d.stopped = true
	m.Kern.Wake(d.proc)
}

// Counts returns the daemon's lifetime aggregate (tests and in-memory
// reporting).
func (d *Daemon) Counts() map[Key]uint64 {
	out := make(map[Key]uint64, len(d.counts))
	for k, v := range d.counts {
		out[k] = v
	}
	return out
}

// SamplesLogged returns the number of samples aggregated.
func (d *Daemon) SamplesLogged() uint64 { return d.samplesLogged }

// Flushes returns the number of disk flushes performed.
func (d *Daemon) Flushes() uint64 { return d.flushes }

func keyLess(a, b Key) bool {
	if a.Event != b.Event {
		return a.Event < b.Event
	}
	if a.Image != b.Image {
		return a.Image < b.Image
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	return a.Off < b.Off
}

type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
