package oprofile

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"viprof/internal/kernel"
	"viprof/internal/record"
)

// The user-level daemon. "Periodically, this daemon processes the
// sample buffer and writes the samples to disk" (§3). It is "the main
// source of profiling overhead, [so] extra care must be taken to ensure
// minimal work is done by this daemon".
//
// Durability: each flush is one framed, checksummed record (see
// internal/record) holding the whole dirty delta map. A write that
// fails mid-record leaves a torn record the salvage reader drops, and
// the daemon retries the full delta later — so a failed flush can never
// double-count and never silently vanishes. Failures are counted in
// FlushErrors; when the backlog exceeds SpillMax keys, the tail of the
// key space is parked on disk as framed, journaled spill records (see
// spill.go) that the recovery pass re-merges — bounded memory,
// recoverable loss. Only if the spill path itself keeps failing does a
// hard cap drop the far tail into SpilledLost: bounded memory first,
// accountable loss as the last resort.

// DaemonConfig tunes the daemon.
type DaemonConfig struct {
	// WakeCycles is the periodic wake interval (default ~100 ms of
	// simulated time).
	WakeCycles uint64
	// BatchMax bounds samples processed per CPU shard per wake (0 = all).
	BatchMax int
	// SpillMax bounds the dirty map across failed flushes: beyond this
	// many keys the sorted tail is spilled to the framed on-disk spill
	// file (default 8192; the real daemon's event buffer is similarly
	// bounded). If spilling itself fails, a hard cap of 4x SpillMax
	// drops the far tail with its count accumulated in SpilledLost.
	SpillMax int
}

// DaemonStatsFile is where the daemon persists its own counters at
// clean shutdown, so the offline integrity check can compare the disk
// contents against what the daemon believed it wrote. A crashed daemon
// never writes it — its absence is itself the degradation signal.
const DaemonStatsFile = "var/lib/oprofile/oprofiled.stats"

// Daemon drains the driver buffer, aggregates counts, and appends
// deltas to the sample file on the simulated disk.
type Daemon struct {
	drv *Driver
	cfg DaemonConfig

	proc *kernel.Process

	counts map[Key]uint64 // lifetime aggregate (also what gets flushed)
	dirty  map[Key]uint64 // deltas since last successful disk flush

	// perSampleOps is the daemon-side logging cost per sample.
	perSampleOps int

	samplesLogged uint64
	// samplesLoggedCPU splits samplesLogged by the CPU the sample was
	// taken on; the per-CPU entries always sum to the aggregate.
	samplesLoggedCPU []uint64
	// horizons tracks, per process, the highest GC epoch each CPU has
	// observed in that process's JIT samples. An epoch is closed for
	// attribution only when every observing CPU has passed it — the
	// cross-core horizon rule (see EpochHorizons).
	horizons map[string]map[int]int

	flushes     uint64
	flushErrors uint64
	backoff     uint // consecutive failed flushes (shifts the sleep)
	crashed     bool // killed mid-write by fault injection
	stopped     bool

	// Spill bookkeeping (see spill.go). spillSeq is burned per attempt;
	// spilledOnDisk counts samples parked in committed spill frames;
	// spilledLost counts samples the hard cap had to drop outright,
	// broken down per event mnemonic in spilledLostByEvent and per CPU
	// in spilledLostCPU (the per-CPU disk-conservation equality closes
	// with it — parked samples carry their CPU in the key, losses must
	// be attributed the same way).
	spillSeq           uint64
	spillBatches       uint64
	spillErrors        uint64
	journalErrors      uint64
	spilledOnDisk      uint64
	spilledLost        uint64
	spilledLostByEvent map[string]uint64
	spilledLostCPU     map[int]uint64
}

// StartDaemon spawns the oprofiled process. It runs as a system daemon
// (it never keeps the machine alive) and flushes remaining samples when
// the last workload process exits.
func StartDaemon(m *kernel.Machine, drv *Driver, cfg DaemonConfig) (*Daemon, error) {
	if cfg.WakeCycles == 0 {
		cfg.WakeCycles = 340_000 // 100 ms at the simulated 3.4 MHz clock
	}
	if cfg.SpillMax == 0 {
		cfg.SpillMax = 8192
	}
	d := &Daemon{
		drv:                drv,
		cfg:                cfg,
		counts:             make(map[Key]uint64),
		dirty:              make(map[Key]uint64),
		horizons:           make(map[string]map[int]int),
		perSampleOps:       420,
		spilledLostByEvent: make(map[string]uint64),
		spilledLostCPU:     make(map[int]uint64),
	}
	proc, err := m.Kern.NewProcess("oprofiled", d)
	if err != nil {
		return nil, err
	}
	proc.Daemon = true
	d.proc = proc
	drv.OnWatermark = func() { m.Kern.Wake(proc) }
	return d, nil
}

// Step implements kernel.Executor: wake, drain, aggregate, flush,
// sleep. After a failed flush the sleep backs off exponentially so a
// sick disk is not hammered at full wake rate.
func (d *Daemon) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	if d.stopped || d.crashed {
		return kernel.StepExit
	}
	d.processBatch(m, d.cfg.BatchMax)
	if d.crashed {
		return kernel.StepExit
	}
	m.Kern.Sleep(p, d.cfg.WakeCycles<<d.backoff)
	return kernel.StepBlocked
}

// processBatch drains and logs up to max samples per CPU shard, then
// flushes deltas to disk. Runs in the daemon's (or, during final flush,
// the caller's) process context.
func (d *Daemon) processBatch(m *kernel.Machine, max int) {
	shards := d.drv.DrainShards(max)
	total := 0
	for _, shard := range shards {
		total += len(shard)
	}
	if total > 0 {
		// Daemon-side logging cost: read the buffer via the module,
		// then per-sample accounting in user space at oprofiled's
		// (unmodelled) text — charged as kernel read + user aggregate.
		m.Kern.ExecKernel("op_read_buffer", 40+total*d.perSampleOps/4, 1)
		d.aggregateShards(shards)
	}
	if len(d.dirty) > 0 {
		d.flush(m)
	}
}

// shardAgg is one drain worker's private accumulation: a shard-local
// count map plus the shard's epoch horizon. Workers share nothing; the
// merge below is the only point their results meet.
type shardAgg struct {
	counts  map[Key]uint64
	n       uint64
	horizon map[string]int // proc -> max epoch seen in this shard
}

func aggregateShard(shard []Sample) *shardAgg {
	a := &shardAgg{counts: make(map[Key]uint64), horizon: make(map[string]int)}
	for _, s := range shard {
		a.counts[KeyOf(s)]++
		a.n++
		if s.JIT {
			if ep, ok := a.horizon[s.Proc]; !ok || s.Epoch > ep {
				a.horizon[s.Proc] = s.Epoch
			}
		}
	}
	return a
}

// aggregateShards folds drained per-CPU shards into the daemon's
// aggregate maps. With more than one non-empty shard the per-shard
// aggregation runs on one goroutine per shard — the profiler's first
// genuinely parallel hot path under GOMAXPROCS>1. Determinism holds
// because each worker touches only its own shard and its own local
// maps, and the merge always walks shards in ascending CPU order.
func (d *Daemon) aggregateShards(shards [][]Sample) {
	aggs := make([]*shardAgg, len(shards))
	nonEmpty := 0
	for _, shard := range shards {
		if len(shard) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty > 1 {
		var wg sync.WaitGroup
		for ci, shard := range shards {
			if len(shard) == 0 {
				continue
			}
			wg.Add(1)
			go func(ci int, shard []Sample) {
				defer wg.Done()
				aggs[ci] = aggregateShard(shard)
			}(ci, shard)
		}
		wg.Wait()
	} else {
		for ci, shard := range shards {
			if len(shard) > 0 {
				aggs[ci] = aggregateShard(shard)
			}
		}
	}
	for ci, a := range aggs {
		if a == nil {
			continue
		}
		for k, c := range a.counts {
			d.counts[k] += c
			d.dirty[k] += c
		}
		d.samplesLogged += a.n
		for len(d.samplesLoggedCPU) <= ci {
			d.samplesLoggedCPU = append(d.samplesLoggedCPU, 0)
		}
		d.samplesLoggedCPU[ci] += a.n
		for proc, ep := range a.horizon {
			hm := d.horizons[proc]
			if hm == nil {
				hm = make(map[int]int)
				d.horizons[proc] = hm
			}
			if cur, ok := hm[ci]; !ok || ep > cur {
				hm[ci] = ep
			}
		}
	}
}

// flush writes the dirty delta map as one framed record per CPU, in
// ascending CPU order. Each record commits (or tears) independently:
// its keys leave the dirty map the moment its write succeeds, so a
// committed group is never retried (no double-count), and a crash
// mid-flush leaves exactly a prefix of the CPUs persisted — the
// partial state the chaos harness's subset-shard scenario exercises.
// On failure the remaining groups stay dirty for retry (the torn
// record on disk fails its checksum) and are bounded by spillExcess.
func (d *Daemon) flush(m *kernel.Machine) {
	order := make([]Key, 0, len(d.dirty))
	for k := range d.dirty {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return keyLess(order[i], order[j]) })
	var cpus []int
	groups := make(map[int][]Key)
	for _, k := range order {
		if _, ok := groups[k.CPU]; !ok {
			cpus = append(cpus, k.CPU)
		}
		groups[k.CPU] = append(groups[k.CPU], k)
	}
	sort.Ints(cpus)
	for _, ci := range cpus {
		g := groups[ci]
		var buf bytes.Buffer
		if err := WriteCounts(&buf, d.dirty, g); err != nil {
			// Serialization into memory cannot fail; treat it as a flush
			// error anyway so a future bug is loud rather than silent.
			d.flushErrors++
			return
		}
		err := m.Kern.SysWrite(d.proc, SampleFile, record.Frame(buf.Bytes()))
		switch {
		case err == nil:
			for _, k := range g {
				delete(d.dirty, k)
			}
		case errors.Is(err, kernel.ErrCrashed):
			// Killed mid-write. The torn record on disk fails its
			// checksum; whatever was still dirty — this CPU's group and
			// every later one — is lost with the process. The missing
			// stats file is the durable evidence.
			d.crashed = true
			d.stopped = true
			return
		default:
			d.flushErrors++
			if d.backoff < 6 {
				d.backoff++
			}
			// Earlier groups already committed and left the dirty map;
			// re-derive the surviving sorted order for the spill bound.
			rest := make([]Key, 0, len(d.dirty))
			for _, k := range order {
				if _, ok := d.dirty[k]; ok {
					rest = append(rest, k)
				}
			}
			d.spillExcess(m, rest)
			return
		}
	}
	d.flushes++
	d.backoff = 0
}

// spillExcess bounds the dirty map after failed flushes by parking the
// sorted tail of the key space on disk as framed, journaled spill
// records. The commit order is the whole protocol: frames first (one
// write), journal ratification second, and only then do the keys leave
// the dirty map — so every sample is, at every instant, accounted in
// exactly one of {dirty, committed spill, lost}. Deterministic (sorted
// order) and loud (counted), never silent.
func (d *Daemon) spillExcess(m *kernel.Machine, order []Key) {
	if d.cfg.SpillMax <= 0 || len(d.dirty) <= d.cfg.SpillMax {
		return
	}
	tail := order[d.cfg.SpillMax:]
	// Burn the sequence number even if this attempt fails: a later
	// attempt's journal commit must never ratify a stale frame left by
	// a torn earlier write.
	seq := d.spillSeq
	d.spillSeq++
	frames, err := buildSpillFrames(seq, d.dirty, tail)
	if err != nil {
		d.spillErrors++
		d.hardCap(order)
		return
	}
	if err := m.Kern.SysWrite(d.proc, SpillFile, frames); err != nil {
		if errors.Is(err, kernel.ErrCrashed) {
			d.crashed = true
			d.stopped = true
			return
		}
		d.spillErrors++
		d.hardCap(order)
		return
	}
	var total uint64
	for _, k := range tail {
		total += d.dirty[k]
	}
	if err := m.Kern.SysWrite(d.proc, DaemonJournalFile, journalSpillCommit(seq, total)); err != nil {
		if errors.Is(err, kernel.ErrCrashed) {
			d.crashed = true
			d.stopped = true
			return
		}
		// The frames landed but were never ratified: recovery discards
		// them and the keys stay dirty — adopting samples that are still
		// accounted unflushed would double-count.
		d.spillErrors++
		d.journalErrors++
		d.hardCap(order)
		return
	}
	for _, k := range tail {
		d.spilledOnDisk += d.dirty[k]
		delete(d.dirty, k)
	}
	d.spillBatches++
}

// hardCap is the last-resort memory bound when the spill path itself
// keeps failing: beyond 4x SpillMax keys the sorted far tail is
// dropped outright, its sample count accumulated in SpilledLost per
// event. Loud, bounded, and only reachable through repeated disk
// failure.
func (d *Daemon) hardCap(order []Key) {
	if d.cfg.SpillMax <= 0 {
		return
	}
	limit := 4 * d.cfg.SpillMax
	if len(d.dirty) <= limit {
		return
	}
	for _, k := range order[limit:] {
		c, ok := d.dirty[k]
		if !ok {
			continue
		}
		d.spilledLost += c
		d.spilledLostByEvent[k.Event.String()] += c
		d.spilledLostCPU[k.CPU] += c
		delete(d.dirty, k)
	}
}

// FinalFlush drains everything left and writes it out; call after the
// workload exits (opcontrol --shutdown). A crashed daemon stays dead —
// restarting it here would fake durability the run did not have.
func (d *Daemon) FinalFlush(m *kernel.Machine) {
	if d.crashed {
		return
	}
	d.processBatch(m, 0)
	// The shutdown path gets a couple of immediate retries: this is the
	// last chance to persist, and the run is over so backoff sleeps no
	// longer apply.
	for retry := 0; retry < 2 && len(d.dirty) > 0 && !d.crashed; retry++ {
		d.flush(m)
	}
	d.stopped = true
	if !d.crashed {
		d.writeStats(m)
	}
	m.Kern.Wake(d.proc)
}

// writeStats persists the daemon's view of the run as a framed
// key=value record. Best-effort: if this very write faults there is no
// meta-meta-file to record that in — the reader treats a missing or
// torn stats file as degradation.
func (d *Daemon) writeStats(m *kernel.Machine) {
	var unflushed uint64
	for _, c := range d.dirty {
		unflushed += c
	}
	ds := d.drv.Stats()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "nmis=%d\nlogged=%d\ndropped=%d\n", ds.NMIs, ds.Logged, ds.Dropped)
	fmt.Fprintf(&buf, "samples_logged=%d\nflushes=%d\nflush_errors=%d\nspilled=%d\nunflushed=%d\n",
		d.samplesLogged, d.flushes, d.flushErrors, d.spilledOnDisk+d.spilledLost, unflushed)
	fmt.Fprintf(&buf, "spilled_on_disk=%d\nspilled_lost=%d\nspill_batches=%d\nspill_errors=%d\njournal_errors=%d\n",
		d.spilledOnDisk, d.spilledLost, d.spillBatches, d.spillErrors, d.journalErrors)
	events := make([]string, 0, len(d.spilledLostByEvent))
	for ev := range d.spilledLostByEvent {
		events = append(events, ev)
	}
	sort.Strings(events)
	for _, ev := range events {
		fmt.Fprintf(&buf, "spilled_lost.%s=%d\n", ev, d.spilledLostByEvent[ev])
	}
	// Per-CPU breakdown on SMP machines, following the prefix.<key>
	// pattern; single-core stats files stay byte-identical to pre-SMP.
	if d.drv.NumCPU() > 1 {
		for ci := 0; ci < d.drv.NumCPU(); ci++ {
			cs := d.drv.StatsCPU(ci)
			fmt.Fprintf(&buf, "nmis.cpu%d=%d\nlogged.cpu%d=%d\ndropped.cpu%d=%d\n",
				ci, cs.NMIs, ci, cs.Logged, ci, cs.Dropped)
			var sl uint64
			if ci < len(d.samplesLoggedCPU) {
				sl = d.samplesLoggedCPU[ci]
			}
			fmt.Fprintf(&buf, "samples_logged.cpu%d=%d\n", ci, sl)
			if lost := d.spilledLostCPU[ci]; lost > 0 {
				fmt.Fprintf(&buf, "spilled_lost.cpu%d=%d\n", ci, lost)
			}
		}
	}
	fmt.Fprintf(&buf, "clean=1\n")
	// Deliberately discarded: oprofiled.stats is the crash-signal-by-
	// absence protocol — the reader treats a missing or torn stats file
	// as an unclean shutdown, which is exactly the verdict a failed
	// stats write deserves, and there is no meta-meta-file to escalate to.
	//viplint:allow syswrite-err stats absence IS the degradation signal; nowhere to escalate
	_ = m.Kern.SysWrite(d.proc, DaemonStatsFile, record.Frame(buf.Bytes()))
}

// Counts returns the daemon's lifetime aggregate (tests and in-memory
// reporting).
func (d *Daemon) Counts() map[Key]uint64 {
	out := make(map[Key]uint64, len(d.counts))
	for k, v := range d.counts {
		out[k] = v
	}
	return out
}

// SamplesLogged returns the number of samples aggregated.
func (d *Daemon) SamplesLogged() uint64 { return d.samplesLogged }

// SamplesLoggedCPU returns the per-CPU split of SamplesLogged, indexed
// by CPU id. The slice may be shorter than the machine's core count if
// higher CPUs never produced a sample.
func (d *Daemon) SamplesLoggedCPU() []uint64 {
	out := make([]uint64, len(d.samplesLoggedCPU))
	copy(out, d.samplesLoggedCPU)
	return out
}

// EpochHorizons returns, per process, the closed epoch horizon: the
// highest GC epoch that every CPU which has observed that process's
// JIT samples has reached. Attribution for epochs at or below the
// horizon is final — no core can still deliver samples tagged with an
// older epoch mapping — while epochs above it may still be in flight
// on some core. This is the cross-core generalization of the
// single-core rule "the current epoch is still open".
func (d *Daemon) EpochHorizons() map[string]int {
	out := make(map[string]int, len(d.horizons))
	for proc, hm := range d.horizons {
		first := true
		min := 0
		for _, ep := range hm {
			if first || ep < min {
				min = ep
				first = false
			}
		}
		out[proc] = min
	}
	return out
}

// Flushes returns the number of successful disk flushes.
func (d *Daemon) Flushes() uint64 { return d.flushes }

// FlushErrors returns the number of failed disk flushes.
func (d *Daemon) FlushErrors() uint64 { return d.flushErrors }

// Spilled returns the number of samples that left the dirty map
// through the spill path — parked on disk plus hard-cap losses.
func (d *Daemon) Spilled() uint64 { return d.spilledOnDisk + d.spilledLost }

// SpilledOnDisk returns the samples parked in committed spill frames.
func (d *Daemon) SpilledOnDisk() uint64 { return d.spilledOnDisk }

// SpilledLost returns the samples the hard cap dropped outright.
func (d *Daemon) SpilledLost() uint64 { return d.spilledLost }

// SpilledLostCPU splits SpilledLost by the CPU of each dropped key, so
// the per-CPU disk-conservation equality closes exactly even after
// hard-cap losses (the aggregate-only gap noted in ROADMAP's SMP
// follow-ups).
func (d *Daemon) SpilledLostCPU() map[int]uint64 {
	out := make(map[int]uint64, len(d.spilledLostCPU))
	for ci, c := range d.spilledLostCPU {
		out[ci] = c
	}
	return out
}

// SpillBatches returns the number of committed spill attempts.
func (d *Daemon) SpillBatches() uint64 { return d.spillBatches }

// SpillErrors returns the number of failed spill attempts.
func (d *Daemon) SpillErrors() uint64 { return d.spillErrors }

// JournalErrors returns the number of failed journal-commit writes.
func (d *Daemon) JournalErrors() uint64 { return d.journalErrors }

// Crashed reports whether fault injection killed the daemon mid-write.
func (d *Daemon) Crashed() bool { return d.crashed }

// Unflushed returns the samples still in the dirty map (aggregated but
// never successfully persisted).
func (d *Daemon) Unflushed() uint64 {
	var n uint64
	for _, c := range d.dirty {
		n += c
	}
	return n
}

// UnflushedCPU splits Unflushed by the CPU of each dirty key — the
// per-CPU conservation checks close their equations with it.
func (d *Daemon) UnflushedCPU() map[int]uint64 {
	out := make(map[int]uint64)
	for k, c := range d.dirty {
		out[k.CPU] += c
	}
	return out
}

func keyLess(a, b Key) bool {
	if a.Event != b.Event {
		return a.Event < b.Event
	}
	if a.Image != b.Image {
		return a.Image < b.Image
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	if a.Off != b.Off {
		return a.Off < b.Off
	}
	return a.CPU < b.CPU
}
