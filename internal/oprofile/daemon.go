package oprofile

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"viprof/internal/kernel"
	"viprof/internal/record"
)

// The user-level daemon. "Periodically, this daemon processes the
// sample buffer and writes the samples to disk" (§3). It is "the main
// source of profiling overhead, [so] extra care must be taken to ensure
// minimal work is done by this daemon".
//
// Durability: each flush is one framed, checksummed record (see
// internal/record) holding the whole dirty delta map. A write that
// fails mid-record leaves a torn record the salvage reader drops, and
// the daemon retries the full delta later — so a failed flush can never
// double-count and never silently vanishes. Failures are counted in
// FlushErrors; when the backlog exceeds SpillMax keys, the tail of the
// key space is parked on disk as framed, journaled spill records (see
// spill.go) that the recovery pass re-merges — bounded memory,
// recoverable loss. Only if the spill path itself keeps failing does a
// hard cap drop the far tail into SpilledLost: bounded memory first,
// accountable loss as the last resort.

// DaemonConfig tunes the daemon.
type DaemonConfig struct {
	// WakeCycles is the periodic wake interval (default ~100 ms of
	// simulated time).
	WakeCycles uint64
	// BatchMax bounds samples processed per wake (0 = all).
	BatchMax int
	// SpillMax bounds the dirty map across failed flushes: beyond this
	// many keys the sorted tail is spilled to the framed on-disk spill
	// file (default 8192; the real daemon's event buffer is similarly
	// bounded). If spilling itself fails, a hard cap of 4x SpillMax
	// drops the far tail with its count accumulated in SpilledLost.
	SpillMax int
}

// DaemonStatsFile is where the daemon persists its own counters at
// clean shutdown, so the offline integrity check can compare the disk
// contents against what the daemon believed it wrote. A crashed daemon
// never writes it — its absence is itself the degradation signal.
const DaemonStatsFile = "var/lib/oprofile/oprofiled.stats"

// Daemon drains the driver buffer, aggregates counts, and appends
// deltas to the sample file on the simulated disk.
type Daemon struct {
	drv *Driver
	cfg DaemonConfig

	proc *kernel.Process

	counts map[Key]uint64 // lifetime aggregate (also what gets flushed)
	dirty  map[Key]uint64 // deltas since last successful disk flush

	// perSampleOps is the daemon-side logging cost per sample.
	perSampleOps int

	samplesLogged uint64
	flushes       uint64
	flushErrors   uint64
	backoff       uint // consecutive failed flushes (shifts the sleep)
	crashed       bool // killed mid-write by fault injection
	stopped       bool

	// Spill bookkeeping (see spill.go). spillSeq is burned per attempt;
	// spilledOnDisk counts samples parked in committed spill frames;
	// spilledLost counts samples the hard cap had to drop outright,
	// broken down per event mnemonic in spilledLostByEvent.
	spillSeq           uint64
	spillBatches       uint64
	spillErrors        uint64
	journalErrors      uint64
	spilledOnDisk      uint64
	spilledLost        uint64
	spilledLostByEvent map[string]uint64
}

// StartDaemon spawns the oprofiled process. It runs as a system daemon
// (it never keeps the machine alive) and flushes remaining samples when
// the last workload process exits.
func StartDaemon(m *kernel.Machine, drv *Driver, cfg DaemonConfig) (*Daemon, error) {
	if cfg.WakeCycles == 0 {
		cfg.WakeCycles = 340_000 // 100 ms at the simulated 3.4 MHz clock
	}
	if cfg.SpillMax == 0 {
		cfg.SpillMax = 8192
	}
	d := &Daemon{
		drv:                drv,
		cfg:                cfg,
		counts:             make(map[Key]uint64),
		dirty:              make(map[Key]uint64),
		perSampleOps:       420,
		spilledLostByEvent: make(map[string]uint64),
	}
	proc, err := m.Kern.NewProcess("oprofiled", d)
	if err != nil {
		return nil, err
	}
	proc.Daemon = true
	d.proc = proc
	drv.OnWatermark = func() { m.Kern.Wake(proc) }
	return d, nil
}

// Step implements kernel.Executor: wake, drain, aggregate, flush,
// sleep. After a failed flush the sleep backs off exponentially so a
// sick disk is not hammered at full wake rate.
func (d *Daemon) Step(m *kernel.Machine, p *kernel.Process) kernel.StepResult {
	if d.stopped || d.crashed {
		return kernel.StepExit
	}
	d.processBatch(m, d.cfg.BatchMax)
	if d.crashed {
		return kernel.StepExit
	}
	m.Kern.Sleep(p, d.cfg.WakeCycles<<d.backoff)
	return kernel.StepBlocked
}

// processBatch drains and logs up to max samples, then flushes deltas
// to disk. Runs in the daemon's (or, during final flush, the caller's)
// process context.
func (d *Daemon) processBatch(m *kernel.Machine, max int) {
	samples := d.drv.Drain(max)
	if len(samples) > 0 {
		// Daemon-side logging cost: read the buffer via the module,
		// then per-sample accounting in user space at oprofiled's
		// (unmodelled) text — charged as kernel read + user aggregate.
		m.Kern.ExecKernel("op_read_buffer", 40+len(samples)*d.perSampleOps/4, 1)
		for _, s := range samples {
			k := KeyOf(s)
			d.counts[k]++
			d.dirty[k]++
			d.samplesLogged++
		}
	}
	if len(d.dirty) > 0 {
		d.flush(m)
	}
}

// flush writes the dirty delta map as one framed record. On success the
// dirty map resets; on failure it is kept whole for retry (the framed
// torn prefix on disk fails its checksum, so the retry cannot
// double-count) and bounded by spillExcess.
func (d *Daemon) flush(m *kernel.Machine) {
	order := make([]Key, 0, len(d.dirty))
	for k := range d.dirty {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return keyLess(order[i], order[j]) })
	var buf bytes.Buffer
	if err := WriteCounts(&buf, d.dirty, order); err != nil {
		// Serialization into memory cannot fail; treat it as a flush
		// error anyway so a future bug is loud rather than silent.
		d.flushErrors++
		return
	}
	err := m.Kern.SysWrite(d.proc, SampleFile, record.Frame(buf.Bytes()))
	switch {
	case err == nil:
		d.dirty = make(map[Key]uint64)
		d.flushes++
		d.backoff = 0
	case errors.Is(err, kernel.ErrCrashed):
		// Killed mid-write. The torn record on disk fails its checksum;
		// whatever was still dirty is lost with the process. The missing
		// stats file is the durable evidence.
		d.crashed = true
		d.stopped = true
	default:
		d.flushErrors++
		if d.backoff < 6 {
			d.backoff++
		}
		d.spillExcess(m, order)
	}
}

// spillExcess bounds the dirty map after failed flushes by parking the
// sorted tail of the key space on disk as framed, journaled spill
// records. The commit order is the whole protocol: frames first (one
// write), journal ratification second, and only then do the keys leave
// the dirty map — so every sample is, at every instant, accounted in
// exactly one of {dirty, committed spill, lost}. Deterministic (sorted
// order) and loud (counted), never silent.
func (d *Daemon) spillExcess(m *kernel.Machine, order []Key) {
	if d.cfg.SpillMax <= 0 || len(d.dirty) <= d.cfg.SpillMax {
		return
	}
	tail := order[d.cfg.SpillMax:]
	// Burn the sequence number even if this attempt fails: a later
	// attempt's journal commit must never ratify a stale frame left by
	// a torn earlier write.
	seq := d.spillSeq
	d.spillSeq++
	frames, err := buildSpillFrames(seq, d.dirty, tail)
	if err != nil {
		d.spillErrors++
		d.hardCap(order)
		return
	}
	if err := m.Kern.SysWrite(d.proc, SpillFile, frames); err != nil {
		if errors.Is(err, kernel.ErrCrashed) {
			d.crashed = true
			d.stopped = true
			return
		}
		d.spillErrors++
		d.hardCap(order)
		return
	}
	var total uint64
	for _, k := range tail {
		total += d.dirty[k]
	}
	if err := m.Kern.SysWrite(d.proc, DaemonJournalFile, journalSpillCommit(seq, total)); err != nil {
		if errors.Is(err, kernel.ErrCrashed) {
			d.crashed = true
			d.stopped = true
			return
		}
		// The frames landed but were never ratified: recovery discards
		// them and the keys stay dirty — adopting samples that are still
		// accounted unflushed would double-count.
		d.spillErrors++
		d.journalErrors++
		d.hardCap(order)
		return
	}
	for _, k := range tail {
		d.spilledOnDisk += d.dirty[k]
		delete(d.dirty, k)
	}
	d.spillBatches++
}

// hardCap is the last-resort memory bound when the spill path itself
// keeps failing: beyond 4x SpillMax keys the sorted far tail is
// dropped outright, its sample count accumulated in SpilledLost per
// event. Loud, bounded, and only reachable through repeated disk
// failure.
func (d *Daemon) hardCap(order []Key) {
	if d.cfg.SpillMax <= 0 {
		return
	}
	limit := 4 * d.cfg.SpillMax
	if len(d.dirty) <= limit {
		return
	}
	for _, k := range order[limit:] {
		c, ok := d.dirty[k]
		if !ok {
			continue
		}
		d.spilledLost += c
		d.spilledLostByEvent[k.Event.String()] += c
		delete(d.dirty, k)
	}
}

// FinalFlush drains everything left and writes it out; call after the
// workload exits (opcontrol --shutdown). A crashed daemon stays dead —
// restarting it here would fake durability the run did not have.
func (d *Daemon) FinalFlush(m *kernel.Machine) {
	if d.crashed {
		return
	}
	d.processBatch(m, 0)
	// The shutdown path gets a couple of immediate retries: this is the
	// last chance to persist, and the run is over so backoff sleeps no
	// longer apply.
	for retry := 0; retry < 2 && len(d.dirty) > 0 && !d.crashed; retry++ {
		d.flush(m)
	}
	d.stopped = true
	if !d.crashed {
		d.writeStats(m)
	}
	m.Kern.Wake(d.proc)
}

// writeStats persists the daemon's view of the run as a framed
// key=value record. Best-effort: if this very write faults there is no
// meta-meta-file to record that in — the reader treats a missing or
// torn stats file as degradation.
func (d *Daemon) writeStats(m *kernel.Machine) {
	var unflushed uint64
	for _, c := range d.dirty {
		unflushed += c
	}
	ds := d.drv.Stats()
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "nmis=%d\nlogged=%d\ndropped=%d\n", ds.NMIs, ds.Logged, ds.Dropped)
	fmt.Fprintf(&buf, "samples_logged=%d\nflushes=%d\nflush_errors=%d\nspilled=%d\nunflushed=%d\n",
		d.samplesLogged, d.flushes, d.flushErrors, d.spilledOnDisk+d.spilledLost, unflushed)
	fmt.Fprintf(&buf, "spilled_on_disk=%d\nspilled_lost=%d\nspill_batches=%d\nspill_errors=%d\njournal_errors=%d\n",
		d.spilledOnDisk, d.spilledLost, d.spillBatches, d.spillErrors, d.journalErrors)
	events := make([]string, 0, len(d.spilledLostByEvent))
	for ev := range d.spilledLostByEvent {
		events = append(events, ev)
	}
	sort.Strings(events)
	for _, ev := range events {
		fmt.Fprintf(&buf, "spilled_lost.%s=%d\n", ev, d.spilledLostByEvent[ev])
	}
	fmt.Fprintf(&buf, "clean=1\n")
	// Deliberately discarded: oprofiled.stats is the crash-signal-by-
	// absence protocol — the reader treats a missing or torn stats file
	// as an unclean shutdown, which is exactly the verdict a failed
	// stats write deserves, and there is no meta-meta-file to escalate to.
	//viplint:allow syswrite-err stats absence IS the degradation signal; nowhere to escalate
	_ = m.Kern.SysWrite(d.proc, DaemonStatsFile, record.Frame(buf.Bytes()))
}

// Counts returns the daemon's lifetime aggregate (tests and in-memory
// reporting).
func (d *Daemon) Counts() map[Key]uint64 {
	out := make(map[Key]uint64, len(d.counts))
	for k, v := range d.counts {
		out[k] = v
	}
	return out
}

// SamplesLogged returns the number of samples aggregated.
func (d *Daemon) SamplesLogged() uint64 { return d.samplesLogged }

// Flushes returns the number of successful disk flushes.
func (d *Daemon) Flushes() uint64 { return d.flushes }

// FlushErrors returns the number of failed disk flushes.
func (d *Daemon) FlushErrors() uint64 { return d.flushErrors }

// Spilled returns the number of samples that left the dirty map
// through the spill path — parked on disk plus hard-cap losses.
func (d *Daemon) Spilled() uint64 { return d.spilledOnDisk + d.spilledLost }

// SpilledOnDisk returns the samples parked in committed spill frames.
func (d *Daemon) SpilledOnDisk() uint64 { return d.spilledOnDisk }

// SpilledLost returns the samples the hard cap dropped outright.
func (d *Daemon) SpilledLost() uint64 { return d.spilledLost }

// SpillBatches returns the number of committed spill attempts.
func (d *Daemon) SpillBatches() uint64 { return d.spillBatches }

// SpillErrors returns the number of failed spill attempts.
func (d *Daemon) SpillErrors() uint64 { return d.spillErrors }

// JournalErrors returns the number of failed journal-commit writes.
func (d *Daemon) JournalErrors() uint64 { return d.journalErrors }

// Crashed reports whether fault injection killed the daemon mid-write.
func (d *Daemon) Crashed() bool { return d.crashed }

// Unflushed returns the samples still in the dirty map (aggregated but
// never successfully persisted).
func (d *Daemon) Unflushed() uint64 {
	var n uint64
	for _, c := range d.dirty {
		n += c
	}
	return n
}

func keyLess(a, b Key) bool {
	if a.Event != b.Event {
		return a.Event < b.Event
	}
	if a.Image != b.Image {
		return a.Image < b.Image
	}
	if a.Epoch != b.Epoch {
		return a.Epoch < b.Epoch
	}
	return a.Off < b.Off
}
