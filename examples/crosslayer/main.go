// crosslayer: the cross-layer call-graph extension.
//
// The paper notes (§4.2) that "VIProf also extends the call graph
// functionality of Oprofile to include call sequence profiles across
// layers" but omits the results for brevity. This example produces
// them: it profiles DaCapo ps with call-graph sampling enabled, folds
// the sampled stacks into caller→callee arcs, resolves every frame with
// the full VIProf resolver (JIT code maps + RVM.map + ELF tables), and
// prints the hottest arcs.
//
//	go run ./examples/crosslayer
package main

import (
	"fmt"
	"log"
	"sort"

	"viprof"
)

func main() {
	out, err := viprof.ProfileBenchmark("ps", viprof.Options{
		Profiler:       viprof.ProfilerVIProf,
		Period:         45_000,
		Scale:          0.5,
		CallGraphDepth: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ps (scale 0.5): %.2f simulated seconds\n\n", out.Seconds)

	graph, err := out.CallGraph()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folded %d stack samples into %d distinct arcs\n\n",
		graph.Samples, len(graph.Arcs))

	fmt.Println("hottest cross-layer call arcs:")
	for _, arc := range graph.Top(12) {
		fmt.Printf("  %6d  %-58s -> %s\n", graph.Arcs[arc], arc.Caller, arc.Callee)
	}

	// Summarize which layer each sampled leaf frame was in.
	layers := map[string]int{}
	for _, row := range out.Report.Rows {
		n := int(row.Counts[viprof.EventCycles])
		switch {
		case row.Image == "JIT.App":
			layers["application (JIT code)"] += n
		case row.Image == "RVM.map":
			layers["VM services (boot image)"] += n
		case row.Image == "vmlinux" || row.Image == "oprofile.ko":
			layers["kernel"] += n
		default:
			layers["native libraries"] += n
		}
	}
	fmt.Println("\ncycle samples by layer:")
	names := make([]string, 0, len(layers))
	for l := range layers {
		names = append(names, l)
	}
	sort.Strings(names)
	for _, l := range names {
		fmt.Printf("  %-26s %d\n", l, layers[l])
	}
}
