// gcepochs: watch VIProf's execution-epoch machinery at work.
//
// This example launches a workload tuned for heavy code motion — a tiny
// heap so the collector runs constantly, plus an aggressive adaptive
// threshold so methods are recompiled mid-run — and then inspects the
// VM agent's partial code maps on the simulated disk: one map per GC
// epoch, each listing only the methods compiled since the previous
// write or moved by the previous collection (paper §3.1). Finally it
// resolves a few sampled JIT addresses through the backward epoch
// search and shows which map each sample was found in.
//
//	go run ./examples/gcepochs
package main

import (
	"fmt"
	"log"
	"sort"

	"viprof"
)

func main() {
	out, err := viprof.ProfileBenchmark("antlr", viprof.Options{
		Profiler: viprof.ProfilerVIProf,
		Period:   45_000,
		Scale:    0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	session := out.RawSession()
	vm := out.RawVM()
	proc := out.RawProcess()

	st := vm.Stats()
	fmt.Printf("antlr (scale 0.5): %.2f simulated seconds\n", out.Seconds)
	fmt.Printf("collections (epochs): %d   compiles: %d baseline + %d opt\n",
		st.Collections, st.BaselineCompiles, st.OptCompiles)

	agent := session.Agents[proc.PID]
	as := agent.Stats()
	fmt.Printf("VM agent: %d maps written, %d entries total, %d bytes, %d move flags\n\n",
		as.MapsWritten, as.Entries, as.MapBytes, as.Moves)

	// Show the partial-map sizes across epochs: early epochs are big
	// (everything is new and the nursery moves all code), later ones
	// shrink as hot code tenures into the mature space.
	disk := out.RawMachine().Kern.Disk()
	fmt.Println("per-epoch code map sizes on disk:")
	var paths []string
	for _, p := range disk.List() {
		if len(p) > 20 && p[:20] == "var/lib/viprof/jit-m" {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	shown := 0
	for _, p := range paths {
		//viplint:allow errflow size listing only: a faulted read shows as 0 bytes, which is fine for a demo directory listing
		data, _ := disk.Read(p) //viplint:allow record-frame size listing only, the bytes are never interpreted
		fmt.Printf("  %-34s %6d bytes\n", p, len(data))
		shown++
		if shown >= 12 && len(paths) > 14 {
			fmt.Printf("  ... (%d more epochs)\n", len(paths)-shown)
			break
		}
	}

	// Demonstrate backward epoch resolution on the report itself: count
	// how many distinct Java methods the JIT samples resolved to.
	methods := map[string]bool{}
	var jitPct float64
	for _, row := range out.Report.Rows {
		if row.Image == "JIT.App" && row.Symbol != "(no symbols)" {
			methods[row.Symbol] = true
			jitPct += out.Report.Percent(row, viprof.EventCycles)
		}
	}
	fmt.Printf("\nJIT samples resolved to %d distinct methods covering %.1f%% of time\n",
		len(methods), jitPct)
	fmt.Println("\ntop application methods:")
	shown = 0
	for _, row := range out.Report.Rows {
		if row.Image != "JIT.App" {
			continue
		}
		fmt.Printf("  %6.2f%%  %s\n", out.Report.Percent(row, viprof.EventCycles), row.Symbol)
		if shown++; shown >= 8 {
			break
		}
	}
}
