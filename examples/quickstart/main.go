// Quickstart: profile a small hand-written program with VIProf.
//
// It builds a toy "Java" program with the bytecode assembler — a main
// method driving a hot worker loop that allocates as it goes — runs it
// on a fresh simulated machine under a VIProf session, and prints the
// vertically integrated report: application methods (JIT code), VM
// internals (RVM.map), native libraries and the kernel, side by side,
// exactly the view the paper's Figure 1 demonstrates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"viprof"
)

func buildProgram() *viprof.Program {
	prog := viprof.NewProgram("quickstart", 2)

	// worker(n): walk an array, allocate every 8th iteration.
	w := viprof.NewAsm()
	w.Const(512).Emit(viprof.OpNewArray, 8, 0).Store(2) // arr
	w.Const(0).Store(1)                                 // i
	w.Label("loop")
	w.Load(2).Load(1).Const(512).Emit(viprof.OpMod).Emit(viprof.OpALoad)
	w.Load(1).Emit(viprof.OpAdd).Store(3)
	w.Load(2).Load(1).Const(512).Emit(viprof.OpMod).Load(3).Emit(viprof.OpAStore)
	w.Load(1).Const(8).Emit(viprof.OpMod)
	w.Branch(viprof.OpJmpNZ, "noalloc")
	w.Emit(viprof.OpNew, 1, 3)
	w.Emit(viprof.OpPutStatic, 0)
	w.Label("noalloc")
	w.Load(1).Const(1).Emit(viprof.OpAdd).Store(1)
	w.Load(1).Load(0).Emit(viprof.OpCmpLT)
	w.Branch(viprof.OpJmpNZ, "loop")
	w.Const(1024).Emit(viprof.OpIntrinsic, viprof.IntrMemset, 1) // native call
	w.Emit(viprof.OpRetVoid)
	worker := prog.Add(&viprof.Method{
		Class: "demo.Worker", Name: "crunch", NArgs: 1, MaxLocals: 4,
		Code: w.MustFinish(),
	})

	// main: call worker 400 times.
	m := viprof.NewAsm()
	m.Const(0).Store(0)
	m.Label("outer")
	m.Const(2000).Call(int32(worker.Index))
	m.Load(0).Const(1).Emit(viprof.OpAdd).Store(0)
	m.Load(0).Const(400).Emit(viprof.OpCmpLT)
	m.Branch(viprof.OpJmpNZ, "outer")
	m.Emit(viprof.OpRetVoid)
	main := prog.Add(&viprof.Method{
		Class: "demo.Main", Name: "main", MaxLocals: 1, Code: m.MustFinish(),
	})
	prog.SetMain(main)
	return prog
}

func main() {
	machine := viprof.NewMachine(1)
	session, err := viprof.StartSession(machine, viprof.SessionConfig{
		Events: []viprof.EventConfig{
			{Event: viprof.EventCycles, Period: 45_000},
			{Event: viprof.EventL2Miss, Period: 12_000},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	prog := buildProgram()
	vm, proc, err := session.LaunchJVM(prog, viprof.VMConfig{HeapBytes: 1 << 20})
	if err != nil {
		log.Fatal(err)
	}
	if err := machine.Kern.Run(0); err != nil {
		log.Fatal(err)
	}
	if !vm.Finished() {
		log.Fatalf("program failed: %v", vm.Err())
	}
	session.Shutdown()

	st := vm.Stats()
	fmt.Printf("ran %d bytecodes in %.2f simulated seconds\n",
		st.BytecodesRun, float64(machine.Core.Cycles())/viprof.ClockHz)
	fmt.Printf("compiles: %d baseline, %d opt; collections: %d\n\n",
		st.BaselineCompiles, st.OptCompiles, st.Collections)

	report, _, err := session.Report(session.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("VIProf vertically integrated report (top 18 rows):")
	fmt.Println(renderTop(report, 18))
}

func renderTop(r *viprof.Report, n int) string {
	var out string
	for i, row := range r.Rows {
		if i >= n {
			break
		}
		out += fmt.Sprintf("%7.3f%%  %-24s %s\n",
			r.Percent(row, viprof.EventCycles), row.Image, row.Symbol)
	}
	return out
}
