// xenstack: profiling through the hypervisor layer — the paper's §5
// future work ("we plan to integrate Xen virtualization extensions into
// VIProf to integrate profiling of the Xen layer (via XenoProf)"),
// realized on the simulated stack.
//
// The same benchmark runs twice: natively, and as a guest above the
// simulated Xen hypervisor. In the virtualized run the report gains
// xen-syms rows (credit scheduler, VM-exit handling, timer
// virtualization) alongside the guest's application, VM, native and
// kernel rows — four software layers in one profile.
//
//	go run ./examples/xenstack
package main

import (
	"fmt"
	"log"

	"viprof"
)

func run(xen bool) *viprof.Outcome {
	out, err := viprof.ProfileBenchmark("JVM98", viprof.Options{
		Profiler: viprof.ProfilerVIProf,
		Period:   45_000,
		Scale:    0.6,
		Xen:      xen,
	})
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	native := run(false)
	virt := run(true)

	fmt.Printf("native run:      %.2f simulated seconds\n", native.Seconds)
	fmt.Printf("virtualized run: %.2f simulated seconds (%.1f%% hypervisor overhead)\n\n",
		virt.Seconds, 100*(virt.Seconds/native.Seconds-1))

	fmt.Println("virtualized profile (top 16 rows):")
	fmt.Println(virt.RenderReport(16))

	var xenPct float64
	for _, row := range virt.Report.Rows {
		if row.Image == "xen-syms" {
			xenPct += virt.Report.Percent(row, viprof.EventCycles)
		}
	}
	fmt.Printf("hypervisor (xen-syms) share of cycles: %.2f%%\n", xenPct)
	if xenPct == 0 {
		log.Fatal("no hypervisor samples — XenoProf layer broken")
	}
}
