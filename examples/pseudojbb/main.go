// pseudojbb: the paper's server-style workload, profiled by VIProf and
// by plain OProfile, demonstrating what vertical integration buys.
//
// SPEC pseudoJBB models warehouses servicing transactions; the paper
// runs 3 warehouses with a fixed transaction count so execution time is
// directly measurable (§4.1). This example runs the calibrated synthetic
// pseudojbb twice — once under each profiler — and prints the two
// reports: OProfile shows the VM as anonymous black boxes, VIProf names
// every warehouse method, VM service and kernel function.
//
//	go run ./examples/pseudojbb [-scale 0.25]
package main

import (
	"flag"
	"fmt"
	"log"

	"viprof"
)

func main() {
	scale := flag.Float64("scale", 0.25, "workload scale (1.0 = full 31 s run)")
	flag.Parse()

	fmt.Printf("== pseudoJBB under VIProf (scale %.2f) ==\n", *scale)
	vip, err := viprof.ProfileBenchmark("pseudojbb", viprof.Options{
		Profiler:   viprof.ProfilerVIProf,
		Period:     90_000,
		MissPeriod: 12_000,
		Scale:      *scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran in %.2f simulated seconds; %d GCs, %d baseline + %d opt compiles\n\n",
		vip.Seconds, vip.VMStats.Collections, vip.VMStats.BaselineCompiles, vip.VMStats.OptCompiles)
	fmt.Println(vip.RenderReport(16))

	fmt.Println("== same workload under plain OProfile ==")
	op, err := viprof.ProfileBenchmark("pseudojbb", viprof.Options{
		Profiler:   viprof.ProfilerOProfile,
		Period:     90_000,
		MissPeriod: 12_000,
		Scale:      *scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ran in %.2f simulated seconds\n\n", op.Seconds)
	fmt.Println(op.RenderReport(12))

	fmt.Println("Note how the OProfile view collapses all application and VM-service")
	fmt.Println("time into \"anon (range:...)\" and \"RVM.code.image (no symbols)\" rows,")
	fmt.Println("while VIProf attributes the same samples to individual Java methods.")
}
