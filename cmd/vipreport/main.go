// vipreport rebuilds the vertically integrated report from a profile
// archive written by viprof-run -out (sample files + epoch code maps +
// RVM.map + image symbol tables), with no simulation state — the
// offline post-processing stage of the paper's §3.2.
//
//	vipreport -dir /tmp/ps-profile [-rows 30]
package main

import (
	"flag"
	"fmt"
	"os"

	"viprof"
	"viprof/internal/oprofile"
)

func main() {
	dir := flag.String("dir", "", "profile archive directory (from viprof-run -out)")
	rows := flag.Int("rows", 30, "max report rows (0 = all)")
	summary := flag.Bool("summary", false, "per-image summary instead of per-symbol rows")
	phases := flag.Bool("phases", false, "per-epoch phase timeline for the VM process")
	fleetView := flag.Bool("fleet", false, "treat the archive as a fleet collector dump (from viprof-fleet -out)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: vipreport -dir <archive> [-fleet] [-summary] [-rows N]")
		os.Exit(2)
	}
	if *fleetView {
		v, err := viprof.LoadFleetArchive(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(v.Render(*rows))
		return
	}
	if *phases {
		out, err := viprof.LoadArchivedPhases(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	rep, err := viprof.LoadArchivedReport(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *summary {
		if err := oprofile.FormatImageSummary(os.Stdout, rep, *rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	outcome := &viprof.Outcome{Report: rep, Events: rep.Events}
	fmt.Print(outcome.RenderReport(*rows))
	if rep.Integrity != nil {
		if err := oprofile.FormatIntegrity(os.Stdout, rep.Integrity); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
