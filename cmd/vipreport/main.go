// vipreport rebuilds the vertically integrated report from a profile
// archive written by viprof-run -out (sample files + epoch code maps +
// RVM.map + image symbol tables), with no simulation state — the
// offline post-processing stage of the paper's §3.2.
//
//	vipreport -dir /tmp/ps-profile [-rows 30]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"viprof"
	"viprof/internal/oprofile"
)

// parseWindow parses a -window "from:to" argument into cycle bounds.
// Either side may be empty ("":to = from the beginning, from:"" = to
// the end), matching the half-open [from, to) the store query uses.
func parseWindow(s string) (from, to uint64, err error) {
	to = ^uint64(0)
	lo, hi, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("vipreport: -window wants from:to, got %q", s)
	}
	if lo != "" {
		if from, err = strconv.ParseUint(lo, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("vipreport: -window from: %v", err)
		}
	}
	if hi != "" {
		if to, err = strconv.ParseUint(hi, 10, 64); err != nil {
			return 0, 0, fmt.Errorf("vipreport: -window to: %v", err)
		}
	}
	if to <= from {
		return 0, 0, fmt.Errorf("vipreport: -window %q is empty (to <= from)", s)
	}
	return from, to, nil
}

func main() {
	dir := flag.String("dir", "", "profile archive directory (from viprof-run -out)")
	rows := flag.Int("rows", 30, "max report rows (0 = all)")
	summary := flag.Bool("summary", false, "per-image summary instead of per-symbol rows")
	phases := flag.Bool("phases", false, "per-epoch phase timeline for the VM process")
	fleetView := flag.Bool("fleet", false, "treat the archive as a fleet collector dump (from viprof-fleet -out)")
	window := flag.String("window", "", "with -fleet: restrict to deltas generated in [from:to) cycles (either side may be empty)")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "usage: vipreport -dir <archive> [-fleet [-window from:to]] [-summary] [-rows N]")
		os.Exit(2)
	}
	if *fleetView {
		v, err := viprof.LoadFleetArchive(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		from, to := uint64(0), ^uint64(0)
		if *window != "" {
			if from, to, err = parseWindow(*window); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		fmt.Print(v.RenderWindow(*rows, from, to))
		return
	}
	if *window != "" {
		fmt.Fprintln(os.Stderr, "vipreport: -window only applies to -fleet archives")
		os.Exit(2)
	}
	if *phases {
		out, err := viprof.LoadArchivedPhases(*dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	}
	rep, err := viprof.LoadArchivedReport(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *summary {
		if err := oprofile.FormatImageSummary(os.Stdout, rep, *rows); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	outcome := &viprof.Outcome{Report: rep, Events: rep.Events}
	fmt.Print(outcome.RenderReport(*rows))
	if rep.Integrity != nil {
		if err := oprofile.FormatIntegrity(os.Stdout, rep.Integrity); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
