// vipbench regenerates the paper's evaluation — Figure 1 (the case
// study report pair), Figure 2 (profiling overhead) and Figure 3 (base
// execution times) — end to end on the simulated machine.
//
//	vipbench -fig all                 # everything at paper scale, 10 runs
//	vipbench -fig 2 -scale 0.2 -runs 3  # a quick look
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"viprof"
)

func main() {
	var (
		fig   = flag.String("fig", "all", "which figure: 1, 2, 3, activity or all")
		scale = flag.Float64("scale", 1.0, "workload scale (1.0 = paper length)")
		runs  = flag.Int("runs", 10, "repetitions per cell (paper uses 10)")
		seed  = flag.Int64("seed", 1, "noise seed")
		rows  = flag.Int("rows", 14, "Figure 1 report rows")
	)
	flag.Parse()

	do := func(name string, f func() (string, error)) {
		start := time.Now()
		text, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(text)
		fmt.Printf("[%s regenerated in %.0fs]\n\n", name, time.Since(start).Seconds())
	}

	if *fig == "1" || *fig == "all" {
		do("Figure 1", func() (string, error) { return viprof.RunFigure1(*scale, *seed, *rows) })
	}
	if *fig == "3" || *fig == "all" {
		do("Figure 3", func() (string, error) { return viprof.RunFigure3(*scale, *runs, *seed) })
	}
	if *fig == "2" || *fig == "all" {
		do("Figure 2", func() (string, error) { return viprof.RunFigure2(*scale, *runs, *seed) })
	}
	if *fig == "activity" || *fig == "all" {
		do("Activity table", func() (string, error) { return viprof.RunActivityTable(*scale, *seed) })
	}
}
