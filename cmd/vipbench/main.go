// vipbench regenerates the paper's evaluation — Figure 1 (the case
// study report pair), Figure 2 (profiling overhead) and Figure 3 (base
// execution times) — end to end on the simulated machine.
//
//	vipbench -fig all                 # everything at paper scale, 10 runs
//	vipbench -fig 2 -scale 0.2 -runs 3  # a quick look
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"viprof"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure: 1, 2, 3, activity, membatch or all")
		scale    = flag.Float64("scale", 1.0, "workload scale (1.0 = paper length)")
		runs     = flag.Int("runs", 10, "repetitions per cell (paper uses 10)")
		seed     = flag.Int64("seed", 1, "noise seed")
		rows     = flag.Int("rows", 14, "Figure 1 report rows")
		benchOut = flag.String("benchout", "BENCH_mem_batch.json", "membatch result file")
	)
	flag.Parse()

	do := func(name string, f func() (string, error)) {
		start := time.Now()
		text, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(text)
		fmt.Printf("[%s regenerated in %.0fs]\n\n", name, time.Since(start).Seconds())
	}

	if *fig == "1" || *fig == "all" {
		do("Figure 1", func() (string, error) { return viprof.RunFigure1(*scale, *seed, *rows) })
	}
	if *fig == "3" || *fig == "all" {
		do("Figure 3", func() (string, error) { return viprof.RunFigure3(*scale, *runs, *seed) })
	}
	if *fig == "2" || *fig == "all" {
		do("Figure 2", func() (string, error) { return viprof.RunFigure2(*scale, *runs, *seed) })
	}
	if *fig == "activity" || *fig == "all" {
		do("Activity table", func() (string, error) { return viprof.RunActivityTable(*scale, *seed) })
	}
	if *fig == "membatch" || *fig == "all" {
		do("Mem-batch bench", func() (string, error) { return runMemBatch(*benchOut) })
	}
}

// runMemBatch times the batched memory-operand engine against its
// per-op ablation on the shared deterministic stream (membench.go),
// verifies the two sides agree on the final cycle count bit for bit,
// and writes the result as machine-readable JSON.
func runMemBatch(path string) (string, error) {
	run := func(batched bool) (time.Duration, uint64) {
		c := viprof.MemBenchCore(batched)
		start := time.Now()
		cycles := viprof.MemBatchStream(c, viprof.MemBenchOps)
		return time.Since(start), cycles
	}
	batchedD, batchedCycles := run(true)
	peropD, peropCycles := run(false)
	if batchedCycles != peropCycles {
		return "", fmt.Errorf("membatch: paths diverged: batched %d cycles vs per-op %d",
			batchedCycles, peropCycles)
	}
	res := struct {
		Benchmark    string  `json:"benchmark"`
		Ops          int     `json:"ops"`
		BatchedNsOp  float64 `json:"batched_ns_per_op"`
		PerOpNsOp    float64 `json:"perop_ns_per_op"`
		Speedup      float64 `json:"speedup"`
		StreamCycles uint64  `json:"stream_cycles"`
	}{
		Benchmark:    "BenchmarkExecMemBatch",
		Ops:          viprof.MemBenchOps,
		BatchedNsOp:  float64(batchedD.Nanoseconds()) / float64(viprof.MemBenchOps),
		PerOpNsOp:    float64(peropD.Nanoseconds()) / float64(viprof.MemBenchOps),
		Speedup:      float64(peropD.Nanoseconds()) / float64(batchedD.Nanoseconds()),
		StreamCycles: batchedCycles,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return fmt.Sprintf("mem-batch: %.1f ns/op batched, %.1f ns/op per-op, %.2fx (%s)",
		res.BatchedNsOp, res.PerOpNsOp, res.Speedup, path), nil
}
