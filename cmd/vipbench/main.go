// vipbench regenerates the paper's evaluation — Figure 1 (the case
// study report pair), Figure 2 (profiling overhead) and Figure 3 (base
// execution times) — end to end on the simulated machine.
//
//	vipbench -fig all                 # everything at paper scale, 10 runs
//	vipbench -fig 2 -scale 0.2 -runs 3  # a quick look
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"viprof"
)

func main() {
	var (
		fig      = flag.String("fig", "all", "which figure: 1, 2, 3, activity, membatch, tracebatch, fleet, smp or all")
		scale    = flag.Float64("scale", 1.0, "workload scale (1.0 = paper length)")
		runs     = flag.Int("runs", 10, "repetitions per cell (paper uses 10)")
		seed     = flag.Int64("seed", 1, "noise seed")
		rows     = flag.Int("rows", 14, "Figure 1 report rows")
		benchOut = flag.String("benchout", "BENCH_mem_batch.json", "membatch result file")
		traceOut = flag.String("tracebenchout", "BENCH_trace_batch.json", "tracebatch result file")
		fleetOut = flag.String("fleetbenchout", "BENCH_fleet.json", "fleet bench result file")
		smpOut   = flag.String("smpbenchout", "BENCH_smp.json", "smp bench result file")
	)
	flag.Parse()

	do := func(name string, f func() (string, error)) {
		start := time.Now()
		text, err := f()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(text)
		fmt.Printf("[%s regenerated in %.0fs]\n\n", name, time.Since(start).Seconds())
	}

	if *fig == "1" || *fig == "all" {
		do("Figure 1", func() (string, error) { return viprof.RunFigure1(*scale, *seed, *rows) })
	}
	if *fig == "3" || *fig == "all" {
		do("Figure 3", func() (string, error) { return viprof.RunFigure3(*scale, *runs, *seed) })
	}
	if *fig == "2" || *fig == "all" {
		do("Figure 2", func() (string, error) { return viprof.RunFigure2(*scale, *runs, *seed) })
	}
	if *fig == "activity" || *fig == "all" {
		do("Activity table", func() (string, error) { return viprof.RunActivityTable(*scale, *seed) })
	}
	if *fig == "membatch" || *fig == "all" {
		do("Mem-batch bench", func() (string, error) { return runMemBatch(*benchOut) })
	}
	if *fig == "tracebatch" || *fig == "all" {
		do("Trace-batch bench", func() (string, error) { return runTraceBatch(*traceOut) })
	}
	if *fig == "fleet" || *fig == "all" {
		do("Fleet bench", func() (string, error) { return runFleet(*fleetOut) })
	}
	if *fig == "smp" || *fig == "all" {
		do("SMP bench", func() (string, error) { return runSMP(*smpOut) })
	}
}

// runSMP measures aggregate profiling throughput against core count:
// the fixed dispatch-heavy multi-VM workload (smpbench.go) runs on
// 1/2/4/8-core machines and the figure of merit is samples and work
// cycles per *simulated* second. Each cell runs three times and the
// fastest repetition is kept — the simulated outcome is deterministic
// per core count, so repetitions only smooth host scheduling noise out
// of the host-time column. Every repetition is conservation-checked by
// the workload itself (SMPBenchRun errors on any per-CPU imbalance),
// and the 4-core cell must show at least 2x the single-core aggregate
// samples/s — the PR's acceptance floor for the sharded pipeline.
func runSMP(path string) (string, error) {
	const reps = 3
	coreCounts := []int{1, 2, 4, 8}
	type cell struct {
		Cores        int     `json:"cores"`
		VMs          int     `json:"vms"`
		Samples      uint64  `json:"samples"`
		SimSeconds   float64 `json:"sim_seconds"`
		SamplesPerS  float64 `json:"samples_per_sim_s"`
		WorkMCPerS   float64 `json:"work_mcycles_per_sim_s"`
		Speedup      float64 `json:"samples_per_s_speedup_vs_1core"`
		Migrations   uint64  `json:"migrations"`
		CohTransfers uint64  `json:"coherency_transfers"`
		HostMs       float64 `json:"host_ms"`
	}
	run := func(cores int) (time.Duration, viprof.SMPBenchResult, error) {
		var best time.Duration
		var keep viprof.SMPBenchResult
		for i := 0; i < reps; i++ {
			start := time.Now()
			r, err := viprof.SMPBenchRun(cores)
			d := time.Since(start)
			if err != nil {
				return 0, r, err
			}
			if i == 0 || d < best {
				best, keep = d, r
			}
		}
		return best, keep, nil
	}
	var cells []cell
	var base float64
	for _, cores := range coreCounts {
		d, r, err := run(cores)
		if err != nil {
			return "", fmt.Errorf("smp %d cores: %w", cores, err)
		}
		perS := r.SamplesPerSimSec()
		if cores == 1 {
			base = perS
		}
		cells = append(cells, cell{
			Cores:        r.Cores,
			VMs:          r.VMs,
			Samples:      r.Samples,
			SimSeconds:   r.SimSeconds,
			SamplesPerS:  perS,
			WorkMCPerS:   r.WorkCyclesPerSimSec() / 1e6,
			Speedup:      perS / base,
			Migrations:   r.Migrations,
			CohTransfers: r.CohTransfers,
			HostMs:       float64(d.Nanoseconds()) / 1e6,
		})
	}
	res := struct {
		Benchmark string `json:"benchmark"`
		Reps      int    `json:"reps"`
		Cells     []cell `json:"cells"`
	}{Benchmark: "BenchmarkSMPScaling", Reps: reps, Cells: cells}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	var four cell
	for _, c := range cells {
		if c.Cores == 4 {
			four = c
		}
	}
	if four.Speedup < 2.0 {
		return "", fmt.Errorf("smp: 4-core samples/s speedup %.2fx below the 2x floor", four.Speedup)
	}
	last := cells[len(cells)-1]
	return fmt.Sprintf("smp: %.0f samples/s at 1 core, %.2fx at 4 cores, %.2fx at %d cores (%s)",
		base, four.Speedup, last.Speedup, last.Cores, path), nil
}

// runFleet measures fleet ingestion and crash recovery against host
// count and collector core count: for each (hosts, cores) cell it
// times the clean ingest run and the crash cell (scripted collector
// crashes forcing shard failover, supervisor restarts and under-fire
// store replays). Each cell runs three times and the fastest
// repetition is kept — the simulated work is identical across
// repetitions, so the minimum is the measurement least polluted by
// host scheduling noise. Every repetition is conservation-checked by
// the workload itself (FleetBenchRun errors on any imbalance or
// missing map replication).
func runFleet(path string) (string, error) {
	const reps = 3
	hostCounts := []int{4, 8, 16}
	coreCounts := []int{1, 4}
	type cell struct {
		Hosts         int     `json:"hosts"`
		Cores         int     `json:"cores"`
		Deltas        int     `json:"deltas_per_host"`
		Samples       uint64  `json:"samples"`
		JournalFrames int     `json:"journal_frames"`
		IngestMs      float64 `json:"ingest_ms"`
		KSamplesPerS  float64 `json:"ksamples_per_s"`
		CrashMs       float64 `json:"crash_recovery_ms"`
		Restarts      uint64  `json:"restarts"`
	}
	run := func(hosts, cores int, crash bool) (time.Duration, viprof.FleetBenchResult, error) {
		var best time.Duration
		var keep viprof.FleetBenchResult
		for i := 0; i < reps; i++ {
			start := time.Now()
			r, err := viprof.FleetBenchRun(hosts, cores, crash)
			d := time.Since(start)
			if err != nil {
				return 0, r, err
			}
			if i == 0 || d < best {
				best, keep = d, r
			}
		}
		return best, keep, nil
	}
	var cells []cell
	for _, cores := range coreCounts {
		for _, hosts := range hostCounts {
			cleanD, clean, err := run(hosts, cores, false)
			if err != nil {
				return "", fmt.Errorf("fleet %d hosts %d cores clean: %w", hosts, cores, err)
			}
			crashD, crashed, err := run(hosts, cores, true)
			if err != nil {
				return "", fmt.Errorf("fleet %d hosts %d cores crash: %w", hosts, cores, err)
			}
			cells = append(cells, cell{
				Hosts:         hosts,
				Cores:         cores,
				Deltas:        clean.Deltas,
				Samples:       clean.Samples,
				JournalFrames: clean.JournalFrames,
				IngestMs:      float64(cleanD.Nanoseconds()) / 1e6,
				KSamplesPerS:  float64(clean.Samples) / cleanD.Seconds() / 1e3,
				CrashMs:       float64(crashD.Nanoseconds()) / 1e6,
				Restarts:      crashed.Restarts,
			})
		}
	}
	res := struct {
		Benchmark string `json:"benchmark"`
		Reps      int    `json:"reps"`
		Cells     []cell `json:"cells"`
	}{Benchmark: "BenchmarkFleetIngest", Reps: reps, Cells: cells}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	last := cells[len(cells)-1]
	return fmt.Sprintf("fleet: %d hosts on %d cores %.1f ms ingest (%.0f ksamples/s), %.1f ms with crash recovery, %d restarts (%s)",
		last.Hosts, last.Cores, last.IngestMs, last.KSamplesPerS, last.CrashMs, last.Restarts, path), nil
}

// runMemBatch times the batched memory-operand engine against its
// per-op ablation on the shared deterministic stream (membench.go),
// verifies the two sides agree on the final cycle count bit for bit,
// and writes the result as machine-readable JSON.
func runMemBatch(path string) (string, error) {
	run := func(batched bool) (time.Duration, uint64) {
		c := viprof.MemBenchCore(batched)
		start := time.Now()
		cycles := viprof.MemBatchStream(c, viprof.MemBenchOps)
		return time.Since(start), cycles
	}
	batchedD, batchedCycles := run(true)
	peropD, peropCycles := run(false)
	if batchedCycles != peropCycles {
		return "", fmt.Errorf("membatch: paths diverged: batched %d cycles vs per-op %d",
			batchedCycles, peropCycles)
	}
	res := struct {
		Benchmark    string  `json:"benchmark"`
		Ops          int     `json:"ops"`
		BatchedNsOp  float64 `json:"batched_ns_per_op"`
		PerOpNsOp    float64 `json:"perop_ns_per_op"`
		Speedup      float64 `json:"speedup"`
		StreamCycles uint64  `json:"stream_cycles"`
	}{
		Benchmark:    "BenchmarkExecMemBatch",
		Ops:          viprof.MemBenchOps,
		BatchedNsOp:  float64(batchedD.Nanoseconds()) / float64(viprof.MemBenchOps),
		PerOpNsOp:    float64(peropD.Nanoseconds()) / float64(viprof.MemBenchOps),
		Speedup:      float64(peropD.Nanoseconds()) / float64(batchedD.Nanoseconds()),
		StreamCycles: batchedCycles,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return fmt.Sprintf("mem-batch: %.1f ns/op batched, %.1f ns/op per-op, %.2fx (%s)",
		res.BatchedNsOp, res.PerOpNsOp, res.Speedup, path), nil
}

// runTraceBatch times the trace cache's fused replay against the per-op
// oracle (SetBatching(false)) on the dispatch-heavy VM workload
// (tracebench.go), verifies all sides agree on the final simulated
// cycle and NMI counts bit for bit, and writes the result as
// machine-readable JSON. Each side is timed three times and the fastest
// repetition is kept — the simulated work is identical across
// repetitions, so the minimum is the measurement least polluted by
// host scheduling noise. The intermediate side (batching on, trace
// cache off) is reported too, isolating the trace layer's own
// contribution from the batching engine's.
func runTraceBatch(path string) (string, error) {
	const reps = 3
	run := func(disTrace, disBatch bool) (time.Duration, viprof.TraceBenchResult, error) {
		var best time.Duration
		var keep viprof.TraceBenchResult
		for i := 0; i < reps; i++ {
			start := time.Now()
			r, err := viprof.TraceBenchRun(disTrace, disBatch)
			d := time.Since(start)
			if err != nil {
				return 0, r, err
			}
			if i == 0 || d < best {
				best, keep = d, r
			}
		}
		return best, keep, nil
	}
	fusedD, fused, err := run(false, false)
	if err != nil {
		return "", fmt.Errorf("tracebatch fused: %w", err)
	}
	stepD, stepped, err := run(true, false)
	if err != nil {
		return "", fmt.Errorf("tracebatch stepped: %w", err)
	}
	peropD, perop, err := run(true, true)
	if err != nil {
		return "", fmt.Errorf("tracebatch perop: %w", err)
	}
	if fused.Cycles != perop.Cycles || stepped.Cycles != perop.Cycles ||
		fused.NMIs != perop.NMIs || stepped.NMIs != perop.NMIs {
		return "", fmt.Errorf("tracebatch: paths diverged: fused %d cycles/%d NMIs, stepped %d/%d, per-op %d/%d",
			fused.Cycles, fused.NMIs, stepped.Cycles, stepped.NMIs, perop.Cycles, perop.NMIs)
	}
	ops := float64(fused.Bytecodes)
	res := struct {
		Benchmark   string  `json:"benchmark"`
		Ops         uint64  `json:"ops"`
		FusedNsOp   float64 `json:"fused_ns_per_op"`
		SteppedNsOp float64 `json:"stepped_ns_per_op"`
		PerOpNsOp   float64 `json:"perop_ns_per_op"`
		Speedup     float64 `json:"speedup"`
		RunCycles   uint64  `json:"run_cycles"`
		NMIs        int     `json:"nmis"`
		Installed   int     `json:"traces_installed"`
		Replays     uint64  `json:"trace_replays"`
		OpsReplayed uint64  `json:"ops_replayed"`
		Deopts      uint64  `json:"deopts"`
		Dropped     int     `json:"traces_dropped"`
	}{
		Benchmark:   "BenchmarkTraceBatch",
		Ops:         fused.Bytecodes,
		FusedNsOp:   float64(fusedD.Nanoseconds()) / ops,
		SteppedNsOp: float64(stepD.Nanoseconds()) / ops,
		PerOpNsOp:   float64(peropD.Nanoseconds()) / ops,
		Speedup:     float64(peropD.Nanoseconds()) / float64(fusedD.Nanoseconds()),
		RunCycles:   fused.Cycles,
		NMIs:        fused.NMIs,
		Installed:   fused.Trace.Installed,
		Replays:     fused.Trace.Replays,
		OpsReplayed: fused.Trace.OpsReplayed,
		Deopts:      fused.Trace.Deopts,
		Dropped:     fused.Trace.Dropped,
	}
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return fmt.Sprintf("trace-batch: %.1f ns/op fused, %.1f ns/op stepped, %.1f ns/op per-op, %.2fx (%s)",
		res.FusedNsOp, res.SteppedNsOp, res.PerOpNsOp, res.Speedup, path), nil
}
