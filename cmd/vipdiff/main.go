// vipdiff compares two profile archives (from viprof-run -out) and
// prints the symbols whose share of the primary event moved the most —
// across every layer at once: application methods, VM services, native
// libraries and the kernel. This is the comparison step of the VIVA
// agenda the paper introduces: profile, adapt, re-profile.
//
//	vipdiff -before /tmp/run1 -after /tmp/run2 [-rows 20]
package main

import (
	"flag"
	"fmt"
	"os"

	"viprof"
)

func main() {
	before := flag.String("before", "", "baseline profile archive")
	after := flag.String("after", "", "comparison profile archive")
	rows := flag.Int("rows", 20, "max rows (0 = all)")
	fleetView := flag.Bool("fleet", false, "compare fleet collector dumps (from viprof-fleet -out)")
	flag.Parse()
	if *before == "" || *after == "" {
		fmt.Fprintln(os.Stderr, "usage: vipdiff [-fleet] -before <archive> -after <archive>")
		os.Exit(2)
	}
	diff := viprof.DiffArchives
	if *fleetView {
		diff = viprof.DiffFleetArchives
	}
	out, err := diff(*before, *after, *rows)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Print(out)
}
