// viprof-run executes one of the paper's benchmarks on the simulated
// machine under a chosen profiler and prints the resulting report, run
// statistics, or both. With -out it archives the profile data for
// standalone post-processing by vipreport.
//
// Examples:
//
//	viprof-run -bench ps                          # VIProf at 90K, full length
//	viprof-run -bench antlr -period 45000 -scale 0.5
//	viprof-run -bench hsqldb -profiler oprofile   # the baseline's view
//	viprof-run -bench ps -out /tmp/ps-profile     # archive for vipreport
package main

import (
	"flag"
	"fmt"
	"os"

	"viprof"
)

func main() {
	var (
		bench    = flag.String("bench", "ps", "benchmark name (see -list)")
		list     = flag.Bool("list", false, "list benchmarks and exit")
		profiler = flag.String("profiler", "viprof", "profiler: viprof, oprofile, none")
		period   = flag.Uint64("period", 90_000, "cycles-event sampling period")
		missP    = flag.Uint64("miss-period", 12_000, "L2-miss sampling period (0 disables)")
		scale    = flag.Float64("scale", 1.0, "workload scale (1.0 = paper-length run)")
		seed     = flag.Int64("seed", 1, "noise seed")
		rows     = flag.Int("rows", 20, "max report rows (0 = all)")
		callg    = flag.Int("callgraph", 0, "call-graph depth (0 disables)")
		out      = flag.String("out", "", "archive profile data to this directory")
		annotate = flag.String("annotate", "", "per-bytecode annotation of a method (fully qualified signature)")
		noRecov  = flag.Bool("no-recovery", false, "skip the startup crash-recovery pass over var/")
		cores    = flag.Int("cores", 1, "simulated core count (multi-core shards the pipeline per CPU)")
	)
	flag.Parse()

	if *list {
		for _, n := range viprof.Benchmarks() {
			spec, _ := viprof.BenchmarkSpec(n)
			fmt.Printf("%-12s %-8s base %.1fs\n", n, spec.Suite, spec.BaseSeconds)
		}
		return
	}

	var kind viprof.Profiler
	switch *profiler {
	case "viprof":
		kind = viprof.ProfilerVIProf
	case "oprofile":
		kind = viprof.ProfilerOProfile
	case "none":
		kind = viprof.ProfilerNone
	default:
		fmt.Fprintf(os.Stderr, "unknown profiler %q\n", *profiler)
		os.Exit(2)
	}

	outcome, err := viprof.ProfileBenchmark(*bench, viprof.Options{
		Profiler:       kind,
		Period:         *period,
		MissPeriod:     *missP,
		Scale:          *scale,
		Seed:           *seed,
		CallGraphDepth: *callg,
		NoRecovery:     *noRecov,
		Cores:          *cores,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	st := outcome.VMStats
	fmt.Printf("%s: %.2f simulated seconds (scale %.2f, %s)\n",
		*bench, outcome.Seconds, *scale, *profiler)
	fmt.Printf("VM: %d bytecodes, %d classes, %d baseline + %d opt compiles, %d collections\n\n",
		st.BytecodesRun, st.ClassesLoaded, st.BaselineCompiles, st.OptCompiles, st.Collections)

	if outcome.Report != nil {
		fmt.Println(outcome.RenderReport(*rows))
	}

	if *callg > 0 && kind == viprof.ProfilerVIProf {
		graph, err := outcome.CallGraph()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("cross-layer call graph (%d stack samples):\n", graph.Samples)
		for _, arc := range graph.Top(10) {
			fmt.Printf("  %6d  %s -> %s\n", graph.Arcs[arc], arc.Caller, arc.Callee)
		}
		fmt.Println()
	}

	if *annotate != "" {
		text, err := outcome.Annotate(*annotate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(text)
	}

	if *out != "" {
		if err := outcome.DumpProfile(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("profile archived to %s (post-process with vipreport -dir %s)\n", *out, *out)
	}
}
