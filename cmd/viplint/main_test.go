package main

import (
	"io"
	"strings"
	"testing"

	"viprof/internal/lint"
)

// TestTreeIsClean is the gate the Makefile relies on: the full viplint
// suite over the whole module must report zero unsuppressed findings.
func TestTreeIsClean(t *testing.T) {
	var out strings.Builder
	n, err := lint.Run(&out, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("viplint reports %d finding(s) on a tree that must be clean:\n%s", n, out.String())
	}
}

// TestBadFixtureFails drives the nonzero-exit path: pointed at a
// seeded-bad fixture package, the driver must report findings (main
// turns a nonzero count into exit status 1).
func TestBadFixtureFails(t *testing.T) {
	var out strings.Builder
	n, err := lint.Run(&out, []string{"internal/lint/testdata/src/detrand_bad"})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("viplint found nothing in detrand_bad; the gate cannot fail")
	}
	for _, line := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
		if !strings.Contains(line, ": [detrand] ") {
			t.Errorf("malformed finding line %q", line)
		}
	}
}

// TestUnknownPattern: a pattern naming no Go files is an error, not a
// silent zero-finding success.
func TestUnknownPattern(t *testing.T) {
	if _, err := lint.Run(io.Discard, []string{"no/such/dir"}); err == nil {
		t.Fatal("expected error for pattern naming a nonexistent directory")
	}
}
