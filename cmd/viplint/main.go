// viplint is the repository's invariant checker: a multichecker running
// the internal/lint pass suite (detrand, maporder, syswrite-err,
// epoch-resolve, record-frame, errflow) over the module. It prints
// every unsuppressed diagnostic and exits 1 when any exist, 2 on
// operational errors — so `make lint` gates exactly like `go vet`.
//
// Usage:
//
//	viplint [-json] [-stats] [-waiver-audit=on|off] [packages]
//
// Package patterns are module-root-relative directories, with the go
// tool's "..." wildcard (default "./..."). -json emits the findings
// and per-pass stats as one JSON document; -stats appends a per-pass
// finding-count/wall-time table to the text output; -waiver-audit=off
// disables the stale //viplint:allow detection while bisecting.
package main

import (
	"flag"
	"fmt"
	"os"

	"viprof/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and stats as JSON")
	stats := flag.Bool("stats", false, "print per-pass finding counts and wall time")
	audit := flag.String("waiver-audit", "on", "flag stale //viplint:allow directives (on|off)")
	flag.Parse()

	res, err := lint.RunOpts(flag.Args(), lint.Options{WaiverAudit: *audit != "off"})
	if err != nil {
		fmt.Fprintln(os.Stderr, "viplint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := res.WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "viplint:", err)
			os.Exit(2)
		}
	} else {
		res.WriteText(os.Stdout)
		if *stats {
			res.WriteStats(os.Stdout)
		}
	}
	if len(res.Findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "viplint: %d finding(s)\n", len(res.Findings))
		}
		os.Exit(1)
	}
}
