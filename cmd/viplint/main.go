// viplint is the repository's invariant checker: a multichecker running
// the internal/lint pass suite (detrand, maporder, syswrite-err,
// epoch-resolve) over the module. It prints every unsuppressed
// diagnostic and exits 1 when any exist, 2 on operational errors — so
// `make lint` gates exactly like `go vet`.
//
// Usage:
//
//	viplint [packages]
//
// Package patterns are module-root-relative directories, with the go
// tool's "..." wildcard (default "./...").
package main

import (
	"fmt"
	"os"

	"viprof/internal/lint"
)

func main() {
	n, err := lint.Run(os.Stdout, os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "viplint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "viplint: %d finding(s)\n", n)
		os.Exit(1)
	}
}
