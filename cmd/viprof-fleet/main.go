// viprof-fleet runs a simulated fleet — N profiled hosts shipping
// delta records over a faulty network into the durable collector — and
// prints the fleet integrity verdict. With -out the collector's disk
// (journal, aggregate snapshot, per-host stats and spills) is archived
// to a real directory for vipreport -fleet / vipdiff -fleet.
//
//	viprof-fleet -hosts 8 -seed 3 -drop 0.05 -out /tmp/fleet1
package main

import (
	"flag"
	"fmt"
	"os"

	"viprof/internal/fleet"
	"viprof/internal/harness"
)

func main() {
	var (
		hosts     = flag.Int("hosts", 8, "number of profiled hosts")
		deltas    = flag.Int("deltas", 12, "delta records per host")
		cores     = flag.Int("cores", 1, "collector machine core count (shards pin across cores)")
		procs     = flag.Int("procs", 0, "collector shard processes (0 = one per core, capped)")
		compact   = flag.Uint64("compact", 0, "run the LSM compactor every N cycles (0 = no compactor)")
		seed      = flag.Int64("seed", 1, "fleet seed (senders, network, workloads)")
		drop      = flag.Float64("drop", 0, "per-message drop probability")
		dup       = flag.Float64("dup", 0, "per-message duplication probability")
		reorder   = flag.Float64("reorder", 0, "per-message reorder probability")
		latency   = flag.Float64("latency", 0, "per-message extra-latency probability")
		partition = flag.Uint64("partition", 0, "cycles of full partition starting at cycle 50000 (0 = none)")
		out       = flag.String("out", "", "archive the collector disk to this directory")
	)
	flag.Parse()

	m := harness.BuildMachine(*cores, *seed)
	cfg := fleet.FleetConfig{
		Hosts:         *hosts,
		DeltasPerHost: *deltas,
		Seed:          *seed,
		Net: fleet.NetFaultPlan{
			Seed:     *seed*0x9E3779B9 + 1,
			PDrop:    *drop,
			PDup:     *dup,
			PReorder: *reorder,
			PLatency: *latency,
		},
	}
	cfg.Collector.Procs = *procs
	cfg.Collector.CompactEveryCycles = *compact
	if *partition > 0 {
		cfg.Net.Partitions = []fleet.Partition{
			{Host: fleet.PartitionAll, Start: 50_000, End: 50_000 + *partition},
		}
	}
	res, err := fleet.RunFleet(m, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if res.RunErr != nil {
		fmt.Fprintln(os.Stderr, res.RunErr)
		os.Exit(1)
	}
	cons := fleet.CheckConservation(res.Senders, res.Collector.Aggregate())
	fmt.Printf("fleet: %d host(s), %d delta(s)/host, %d samples aggregated\n",
		*hosts, *deltas, res.Collector.Aggregate().Total())
	fmt.Printf("conservation: generated %d = applied %d + held %d (%d mismatch(es))\n",
		cons.GeneratedSamples, cons.AppliedSamples, cons.HeldSamples, len(cons.Mismatches))
	fmt.Println()
	fmt.Print(fleet.FormatFleetIntegrity(res.Integrity))
	if *out != "" {
		if err := m.Kern.Disk().DumpTo(*out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\narchived to %s\n", *out)
	}
	if !cons.Balanced() {
		os.Exit(1)
	}
}
