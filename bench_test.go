package viprof

// The benchmark harness: one testing.B benchmark per table/figure of
// the paper's evaluation, plus ablation benches for the design choices
// DESIGN.md calls out. These default to reduced workload scales so
// `go test -bench=.` completes in minutes; paper-scale numbers are
// regenerated with `go run ./cmd/vipbench` (see EXPERIMENTS.md).
//
// Custom metrics (b.ReportMetric) carry the quantities the paper
// reports: slowdown factors for Figure 2, simulated seconds for
// Figure 3, map bytes for the partial-map ablation, and so on.

import (
	"math/rand"
	"strings"
	"testing"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/core"
	"viprof/internal/cpu"
	"viprof/internal/harness"
	"viprof/internal/hpc"
	"viprof/internal/workload"
)

const benchScale = 0.15 // workload scale for `go test -bench`

// BenchmarkFigure1 regenerates the case-study report pair (DaCapo ps
// under VIProf and under plain OProfile, both events armed) and reports
// how many distinct Java methods the VIProf half resolves that the
// OProfile half cannot.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure1(benchScale, int64(i)+1, 0)
		if err != nil {
			b.Fatal(err)
		}
		resolved := 0
		for _, row := range fig.VIProf.Rows {
			if row.Image == "JIT.App" && row.Symbol != "(no symbols)" {
				resolved++
			}
		}
		if resolved == 0 {
			b.Fatal("VIProf resolved no JIT methods")
		}
		for _, row := range fig.OProfile.Rows {
			if strings.Contains(row.Symbol, "parseLine") {
				b.Fatal("baseline resolved a Java method")
			}
		}
		b.ReportMetric(float64(resolved), "jit-methods")
	}
}

// BenchmarkFigure2 regenerates the overhead experiment on a
// representative benchmark subset and reports the average slowdown of
// each configuration. The paper's claims (§4.3): ~5% average for both
// profilers at the 90K period; higher frequency costs more; VIProf 450K
// is cheapest.
func BenchmarkFigure2(b *testing.B) {
	names := []string{"fop", "antlr", "ps"}
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure2Subset(names, benchScale, 3, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.AverageSlowdown("Oprof 90K"), "oprof90K-slowdown")
		b.ReportMetric(fig.AverageSlowdown("VIProf 45K"), "viprof45K-slowdown")
		b.ReportMetric(fig.AverageSlowdown("VIProf 90K"), "viprof90K-slowdown")
		b.ReportMetric(fig.AverageSlowdown("VIProf 450K"), "viprof450K-slowdown")
	}
}

// BenchmarkFigure3 regenerates the base-execution-time table and
// reports the suite-average simulated seconds (scaled).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure3(benchScale, 1, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		avg := fig.Rows[len(fig.Rows)-1]
		if avg.Bench != "Average" {
			b.Fatal("no average row")
		}
		b.ReportMetric(avg.Seconds, "sim-seconds")
		b.ReportMetric(avg.Seconds/avg.PaperSecs, "vs-paper")
	}
}

// benchOne runs one (benchmark, config) cell and returns simulated
// seconds plus the full result.
func benchOne(b *testing.B, bench string, rc harness.RunConfig, seed int64) *harness.Result {
	b.Helper()
	spec, err := workload.ByName(bench)
	if err != nil {
		b.Fatal(err)
	}
	r, err := harness.RunOnce(spec, rc, harness.Options{Scale: benchScale, Seed: seed})
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationFullMaps compares the paper's partial code maps
// against writing a full map at every epoch: bytes written and
// slowdown. Partial maps exist to bound agent overhead (§3.1).
func BenchmarkAblationFullMaps(b *testing.B) {
	rcPartial := harness.RunConfig{Kind: harness.ProfVIProf, Period: 90_000}
	rcFull := rcPartial
	rcFull.FullMaps = true
	for i := 0; i < b.N; i++ {
		p := benchOne(b, "antlr", rcPartial, int64(i)+1)
		f := benchOne(b, "antlr", rcFull, int64(i)+1)
		if f.AgentStats.MapBytes <= p.AgentStats.MapBytes {
			b.Fatalf("full maps wrote %d bytes <= partial %d",
				f.AgentStats.MapBytes, p.AgentStats.MapBytes)
		}
		b.ReportMetric(float64(p.AgentStats.MapBytes), "partial-bytes")
		b.ReportMetric(float64(f.AgentStats.MapBytes), "full-bytes")
		b.ReportMetric(f.Seconds/p.Seconds, "full-vs-partial-time")
	}
}

// BenchmarkAblationLogInGC compares the paper's "flag, don't log"
// move hook against eager logging from inside the collector — the
// design §3 rejects because GC code is highly tuned.
func BenchmarkAblationLogInGC(b *testing.B) {
	rcFlag := harness.RunConfig{Kind: harness.ProfVIProf, Period: 90_000}
	rcEager := rcFlag
	rcEager.EagerMoveLog = true
	for i := 0; i < b.N; i++ {
		flag := benchOne(b, "bloat", rcFlag, int64(i)+1)
		eager := benchOne(b, "bloat", rcEager, int64(i)+1)
		b.ReportMetric(eager.Seconds/flag.Seconds, "eager-vs-flag-time")
		b.ReportMetric(float64(flag.AgentStats.Moves), "moves")
	}
}

// BenchmarkAblationAnonPath quantifies the anonymous-bookkeeping work
// VIProf's JIT-region check replaces — the paper's explanation for the
// occasional VIProf-faster-than-OProfile bars in Figure 2 (§4.3).
func BenchmarkAblationAnonPath(b *testing.B) {
	rcOprof := harness.RunConfig{Kind: harness.ProfOprofile, Period: 90_000}
	rcVip := harness.RunConfig{Kind: harness.ProfVIProf, Period: 90_000}
	for i := 0; i < b.N; i++ {
		op := benchOne(b, "xalan", rcOprof, int64(i)+1)
		vp := benchOne(b, "xalan", rcVip, int64(i)+1)
		if op.DriverStats.AnonSamples == 0 {
			b.Fatal("baseline logged no anonymous samples")
		}
		if vp.DriverStats.JITSamples == 0 {
			b.Fatal("viprof claimed no JIT samples")
		}
		b.ReportMetric(float64(op.DriverStats.AnonSamples), "anon-samples")
		b.ReportMetric(float64(vp.DriverStats.JITSamples), "jit-samples")
		b.ReportMetric(vp.Seconds/op.Seconds, "viprof-vs-oprof-time")
	}
}

// BenchmarkEpochSearch measures the backward epoch search: how many
// maps the post-processor examines per JIT sample. With the mature
// space tenuring hot code, nearly all samples resolve in the first map
// examined.
func BenchmarkEpochSearch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := ProfileBenchmark("antlr", Options{Scale: benchScale, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		s := out.RawSession()
		proc := out.RawProcess()
		_, res, err := s.Report(s.Images(out.RawVM()), map[string]int{proc.Name: proc.PID})
		if err != nil {
			b.Fatal(err)
		}
		var total, weighted uint64
		maxDepth := 0
		for depth, n := range res.SearchDepths {
			total += n
			weighted += uint64(depth) * n
			if depth > maxDepth {
				maxDepth = depth
			}
		}
		if total == 0 {
			b.Fatal("no JIT samples resolved")
		}
		b.ReportMetric(float64(weighted)/float64(total), "avg-depth")
		b.ReportMetric(float64(maxDepth), "max-depth")
		b.ReportMetric(float64(res.Unresolved()), "unresolved")
	}
}

// BenchmarkProfileBenchmark is the end-to-end throughput bench for the
// public API (how long one fully profiled fop run takes in real time).
func BenchmarkProfileBenchmark(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := ProfileBenchmark("fop", Options{Scale: benchScale, Seed: int64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		if out.Report == nil {
			b.Fatal("no report")
		}
	}
}

// BenchmarkExecBatch measures the event-horizon batched execution
// engine against the precise per-op path on a full-scale workload run's
// worth of instructions: the micro-op volume of a paper-scale fop run,
// shaped like the JVM's dispatch stream (short straight-line basic
// blocks discovered one op at a time, page jumps at calls) plus the
// kernel's longer ExecRange runs, with GLOBAL_POWER_EVENTS sampled at
// the paper's most aggressive 45K period and the NMI handler charging a
// driver-sized cost. Both sides execute the identical stream through
// the same entry points; the per-op side only has batching disabled, so
// the measured delta is exactly the engine. The acceptance bar is the
// batched side retiring the stream at least 2x faster.
func BenchmarkExecBatch(b *testing.B) {
	const streamOps = 11_000_000 // ~ one paper-scale fop run
	stream := func(b *testing.B, batched bool) (cycles uint64) {
		for i := 0; i < b.N; i++ {
			bank := hpc.NewBank()
			bank.Program(hpc.GlobalPowerEvents, 45_000)
			c := cpu.New(bank, cache.DefaultHierarchy())
			c.SetNMIHandler(func(core *cpu.Core, _ cpu.Snapshot, _ hpc.Event) {
				core.ExecRange(addr.KernelBase+0x80, 120, 4, 1)
			})
			c.SetBatching(batched)
			r := rand.New(rand.NewSource(1))
			pc := addr.Address(0x6000_0000)
			for done := 0; done < streamOps; {
				if r.Intn(20) == 0 {
					// Kernel/agent-style straight-line run.
					n := 200 + r.Intn(1800)
					c.ExecBatch(pc, n, 4, 1)
					pc += addr.Address(4 * n)
					done += n
				} else {
					// Bytecode-style basic block, then a "call" elsewhere.
					n := 4 + r.Intn(12)
					for j := 0; j < n; j++ {
						c.BatchOp(pc, uint32(1+j%3))
						pc += 4
					}
					done += n
					pc = addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
				}
			}
			c.FlushBatch()
			cycles = c.Cycles()
		}
		return cycles
	}
	var batchedCycles, peropCycles uint64
	b.Run("batched", func(b *testing.B) { batchedCycles = stream(b, true) })
	b.Run("perop", func(b *testing.B) { peropCycles = stream(b, false) })
	if batchedCycles != peropCycles {
		b.Fatalf("paths diverged: batched %d cycles vs per-op %d", batchedCycles, peropCycles)
	}
}

// BenchmarkExecMemBatch measures the batched memory-operand path
// against the precise per-op path on the arraycopy/GC-copy-heavy stream
// in membench.go: bulk ExecMemBatch runs and sequential BatchMemOp
// sweeps with both paper events armed and the NMI handler charging a
// driver-sized cost. Both sides execute the identical stream through the
// identical entry points; the per-op side only has batching disabled, so
// the measured delta is exactly the memory-run engine. The acceptance
// bar is the batched side retiring the stream at least 3x faster, and
// both sides must agree on the final cycle count bit for bit.
func BenchmarkExecMemBatch(b *testing.B) {
	stream := func(b *testing.B, batched bool) (cycles uint64) {
		for i := 0; i < b.N; i++ {
			cycles = MemBatchStream(MemBenchCore(batched), MemBenchOps)
		}
		return cycles
	}
	var batchedCycles, peropCycles uint64
	b.Run("batched", func(b *testing.B) { batchedCycles = stream(b, true) })
	b.Run("perop", func(b *testing.B) { peropCycles = stream(b, false) })
	if batchedCycles != peropCycles {
		b.Fatalf("paths diverged: batched %d cycles vs per-op %d", batchedCycles, peropCycles)
	}
}

// BenchmarkTraceBatch measures the trace cache's fused replay against
// the per-op oracle on the dispatch-heavy VM workload in tracebench.go:
// a hot loop of arithmetic chains, array/field/static read-modify-
// writes, a deopting data-dependent branch, and a periodic allocation
// that moves the traced body mid-run, with both paper events armed at
// aggressive periods. The fused side runs the trace cache over the
// batching engine; the per-op side is SetBatching(false) — every
// bytecode through core.Exec, the same configuration pair the trace
// quickcheck suite proves equivalent. Both sides must agree on the
// final simulated cycle count (and NMI count) bit for bit.
func BenchmarkTraceBatch(b *testing.B) {
	run := func(b *testing.B, disTrace, disBatch bool) (r TraceBenchResult) {
		for i := 0; i < b.N; i++ {
			var err error
			r, err = TraceBenchRun(disTrace, disBatch)
			if err != nil {
				b.Fatal(err)
			}
		}
		return r
	}
	var fused, perop TraceBenchResult
	b.Run("fused", func(b *testing.B) { fused = run(b, false, false) })
	b.Run("perop", func(b *testing.B) { perop = run(b, true, true) })
	if fused.Cycles != perop.Cycles || fused.NMIs != perop.NMIs {
		b.Fatalf("paths diverged: fused %d cycles/%d NMIs vs per-op %d cycles/%d NMIs",
			fused.Cycles, fused.NMIs, perop.Cycles, perop.NMIs)
	}
	if fused.Trace.Replays == 0 {
		b.Fatalf("fused side never replayed a trace: %+v", fused.Trace)
	}
}

// BenchmarkEpochResolveIndexed measures the flattened epoch index
// against the paper's literal backward scan on a deep chain: a long run
// whose agent wrote one big initial map and small partial maps for
// hundreds of epochs after it, so most samples force the scan far back
// through the chain. The query stream is page-local the way real sample
// streams are. Both resolvers answer the identical queries; equality
// (including the SearchDepths the ablation histogram records) is
// asserted as part of the benchmark.
func BenchmarkEpochResolveIndexed(b *testing.B) {
	const (
		epochs  = 200
		queries = 30_000
	)
	r := rand.New(rand.NewSource(7))
	perEpoch := make([][]core.MapEntry, epochs)
	var starts []addr.Address
	add := func(e int, start addr.Address, size uint32) {
		perEpoch[e] = append(perEpoch[e], core.MapEntry{
			Start: start, Size: size, Level: "base", Sig: "m",
		})
		starts = append(starts, start)
	}
	// Epoch 0: the startup burst of compilations.
	for i := 0; i < 150; i++ {
		add(0, addr.Address(0x6000_0000+i*0x400), uint32(128+r.Intn(512)))
	}
	// Later epochs: a few compiles/moves each (the paper's partial maps).
	for e := 1; e < epochs; e++ {
		for i := 0; i < 4; i++ {
			add(e, addr.Address(0x6000_0000+r.Intn(1<<16)*0x40), uint32(128+r.Intn(512)))
		}
	}
	chain := core.NewMapChain(perEpoch)
	type query struct {
		epoch int
		pc    addr.Address
	}
	qs := make([]query, queries)
	for i := range qs {
		if i > 0 && r.Intn(4) != 0 {
			// Page locality: most samples repeat the previous hot region.
			qs[i] = qs[i-1]
			qs[i].pc += addr.Address(r.Intn(64) * 4)
		} else {
			qs[i] = query{
				epoch: epochs/2 + r.Intn(epochs/2),
				pc:    starts[r.Intn(len(starts))] + addr.Address(r.Intn(256)),
			}
		}
	}
	// Equality including depth, and the histogram the resolver records.
	var depthSum uint64
	for _, q := range qs {
		ge, gd, gok := chain.Resolve(q.epoch, q.pc)
		we, wd, wok := chain.ResolveScan(q.epoch, q.pc)
		if gok != wok || gd != wd || ge != we {
			b.Fatalf("resolvers disagree at (%d, %s)", q.epoch, q.pc)
		}
		depthSum += uint64(gd)
	}
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				chain.Resolve(q.epoch, q.pc)
			}
		}
		b.ReportMetric(float64(depthSum)/float64(len(qs)), "avg-depth")
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, q := range qs {
				chain.ResolveScan(q.epoch, q.pc)
			}
		}
	})
}

// BenchmarkXenOverhead measures the simulated hypervisor's cost (the
// paper's §5 future-work layer): the same benchmark native and
// virtualized, plus the share of samples attributed to xen-syms.
func BenchmarkXenOverhead(b *testing.B) {
	rcNative := harness.RunConfig{Kind: harness.ProfVIProf, Period: 45_000}
	rcXen := rcNative
	rcXen.Xen = true
	for i := 0; i < b.N; i++ {
		native := benchOne(b, "JVM98", rcNative, int64(i)+1)
		virt := benchOne(b, "JVM98", rcXen, int64(i)+1)
		if virt.Seconds <= native.Seconds {
			b.Fatalf("virtualization cost nothing: %.3f vs %.3f", virt.Seconds, native.Seconds)
		}
		b.ReportMetric(virt.Seconds/native.Seconds, "xen-slowdown")
	}
}

// BenchmarkAblationOSR compares on-stack replacement (the default,
// matching Jikes RVM) against promotion-at-next-invocation only.
// Workloads whose hot loops live in long single invocations benefit
// most.
func BenchmarkAblationOSR(b *testing.B) {
	specOn, err := workload.ByName("pseudojbb")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		prog, err := workload.Build(specOn, benchScale)
		if err != nil {
			b.Fatal(err)
		}
		run := func(disableOSR bool) float64 {
			m := NewMachine(int64(i) + 1)
			vm, _, err := StartVMForBench(m, prog, disableOSR)
			if err != nil {
				b.Fatal(err)
			}
			if err := m.Kern.Run(0); err != nil {
				b.Fatal(err)
			}
			if !vm.Finished() {
				b.Fatalf("vm error: %v", vm.Err())
			}
			return float64(m.Core.Cycles()) / ClockHz
		}
		withOSR := run(false)
		withoutOSR := run(true)
		b.ReportMetric(withoutOSR/withOSR, "noosr-vs-osr-time")
	}
}
