package viprof

// Fleet archives: a fleet run dumped to a real directory (the
// collector journal, aggregate snapshot, per-host stats and spill
// files) can be re-queried offline by vipreport -fleet and compared by
// vipdiff -fleet, with no simulation state — the same
// archive-then-post-process shape the per-host profile tools use. The
// authoritative source is always the write-ahead journal: loading an
// archive replays it through the same idempotent path the collector's
// own crash recovery uses, then cross-checks the snapshot against the
// replay.

import (
	"fmt"
	"sort"
	"strings"

	"viprof/internal/fleet"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// FleetView is a loaded fleet archive, ready for rendering or diffing.
type FleetView struct {
	Aggregate *fleet.Aggregate
	Replay    fleet.JournalReplay
	Integrity *fleet.FleetIntegrity
}

// LoadFleetArchive replays the collector journal from an archive
// directory and assembles the fleet integrity block. Network counters
// are not persisted (they die with the run), so the offline integrity
// judges only the durable evidence.
func LoadFleetArchive(dir string) (*FleetView, error) {
	disk, err := kernel.LoadDiskFrom(dir)
	if err != nil {
		return nil, err
	}
	agg, rep, err := fleet.ReplayJournal(disk, 0)
	if err != nil {
		return nil, fmt.Errorf("viprof: replaying fleet journal: %v", err)
	}
	fi := fleet.AssembleIntegrity(disk, agg, rep, agg.Hosts(), fleet.NetFaultStats{})
	return &FleetView{Aggregate: agg, Replay: rep, Integrity: fi}, nil
}

// fleetRow is one (event, image) cell of the fleet aggregate.
type fleetRow struct {
	event, image string
	samples      uint64
}

// fleetRows folds the aggregate per (event, image), JIT keys under the
// JIT image name, sorted by descending sample count.
func fleetRows(agg *fleet.Aggregate) []fleetRow {
	cells := make(map[[2]string]uint64)
	for k, c := range agg.Counts() {
		img := k.Image
		if k.JIT {
			img = oprofile.JITImageName
		}
		cells[[2]string{k.Event.String(), img}] += c
	}
	rows := make([]fleetRow, 0, len(cells))
	for cell, c := range cells {
		rows = append(rows, fleetRow{event: cell[0], image: cell[1], samples: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].samples != rows[j].samples {
			return rows[i].samples > rows[j].samples
		}
		if rows[i].event != rows[j].event {
			return rows[i].event < rows[j].event
		}
		return rows[i].image < rows[j].image
	})
	return rows
}

// Render prints the fleet aggregate the way vipreport -fleet shows it:
// per-image totals with fleet-wide shares, per-host totals, and the
// integrity block.
func (v *FleetView) Render(maxRows int) string {
	var sb strings.Builder
	total := v.Aggregate.Total()
	fmt.Fprintf(&sb, "fleet aggregate: %d samples from %d host(s), %d journal frame(s)\n\n",
		total, len(v.Aggregate.Hosts()), v.Replay.Deltas+v.Replay.Duplicates)
	fmt.Fprintf(&sb, "%-10s %7s  %-24s %s\n", "samples", "%", "image", "event")
	rows := fleetRows(v.Aggregate)
	for i, r := range rows {
		if maxRows > 0 && i >= maxRows {
			fmt.Fprintf(&sb, "  ... %d more row(s)\n", len(rows)-i)
			break
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.samples) / float64(total)
		}
		fmt.Fprintf(&sb, "%-10d %6.2f%%  %-24s %s\n", r.samples, share, r.image, r.event)
	}
	sb.WriteString("\nper-host:\n")
	for _, h := range v.Aggregate.Hosts() {
		fmt.Fprintf(&sb, "  host%02d  %8d samples  (max seq %d)\n", h, v.Aggregate.HostTotal(h), v.Aggregate.MaxSeq(h))
	}
	sb.WriteString("\n")
	sb.WriteString(fleet.FormatFleetIntegrity(v.Integrity))
	return sb.String()
}

// DiffFleetArchives compares two fleet archives and prints the
// (event, image) cells whose share of the fleet-wide total moved the
// most — the fleet-level analogue of vipdiff's symbol view.
func DiffFleetArchives(beforeDir, afterDir string, maxRows int) (string, error) {
	before, err := LoadFleetArchive(beforeDir)
	if err != nil {
		return "", fmt.Errorf("before: %w", err)
	}
	after, err := LoadFleetArchive(afterDir)
	if err != nil {
		return "", fmt.Errorf("after: %w", err)
	}
	share := func(v *FleetView) map[[2]string]float64 {
		total := v.Aggregate.Total()
		out := make(map[[2]string]float64)
		if total == 0 {
			return out
		}
		for _, r := range fleetRows(v.Aggregate) {
			out[[2]string{r.event, r.image}] = 100 * float64(r.samples) / float64(total)
		}
		return out
	}
	bs, as := share(before), share(after)
	type move struct {
		event, image string
		before, af   float64
	}
	var moves []move
	seen := make(map[[2]string]bool)
	for cell := range bs {
		seen[cell] = true
	}
	for cell := range as {
		seen[cell] = true
	}
	for cell := range seen {
		moves = append(moves, move{event: cell[0], image: cell[1], before: bs[cell], af: as[cell]})
	}
	abs := func(f float64) float64 {
		if f < 0 {
			return -f
		}
		return f
	}
	sort.Slice(moves, func(i, j int) bool {
		di, dj := abs(moves[i].af-moves[i].before), abs(moves[j].af-moves[j].before)
		if di != dj {
			return di > dj
		}
		if moves[i].event != moves[j].event {
			return moves[i].event < moves[j].event
		}
		return moves[i].image < moves[j].image
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet diff: %d -> %d samples\n\n", before.Aggregate.Total(), after.Aggregate.Total())
	fmt.Fprintf(&sb, "%8s  %8s  %8s  %-24s %s\n", "before", "after", "delta", "image", "event")
	for i, mv := range moves {
		if maxRows > 0 && i >= maxRows {
			fmt.Fprintf(&sb, "  ... %d more row(s)\n", len(moves)-i)
			break
		}
		fmt.Fprintf(&sb, "%7.2f%%  %7.2f%%  %+7.2f%%  %-24s %s\n",
			mv.before, mv.af, mv.af-mv.before, mv.image, mv.event)
	}
	degraded := func(v *FleetView) string {
		if v.Integrity.Degraded() {
			return "DEGRADED"
		}
		return "clean"
	}
	fmt.Fprintf(&sb, "\nintegrity: before %s, after %s\n", degraded(before), degraded(after))
	return sb.String(), nil
}
