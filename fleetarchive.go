package viprof

// Fleet archives: a fleet run dumped to a real directory (the
// collector journal, aggregate snapshot, per-host stats and spill
// files) can be re-queried offline by vipreport -fleet and compared by
// vipdiff -fleet, with no simulation state — the same
// archive-then-post-process shape the per-host profile tools use. The
// authoritative source is always the write-ahead journal: loading an
// archive replays it through the same idempotent path the collector's
// own crash recovery uses, then cross-checks the snapshot against the
// replay.

import (
	"fmt"
	"sort"
	"strings"

	"viprof/internal/core"
	"viprof/internal/fleet"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// FleetView is a loaded fleet archive, ready for rendering or diffing.
type FleetView struct {
	Aggregate *fleet.Aggregate
	Replay    fleet.JournalReplay
	Integrity *fleet.FleetIntegrity
}

// LoadFleetArchive replays the durable fleet store (the compacted
// generation plus every shard journal) from an archive directory and
// assembles the fleet integrity block. Network counters are not
// persisted (they die with the run), so the offline integrity judges
// only the durable evidence.
func LoadFleetArchive(dir string) (*FleetView, error) {
	disk, err := kernel.LoadDiskFrom(dir)
	if err != nil {
		return nil, err
	}
	agg, rep, err := fleet.LoadStore(disk, 0)
	if err != nil {
		return nil, fmt.Errorf("viprof: replaying fleet store: %v", err)
	}
	fi := fleet.AssembleIntegrity(disk, agg, rep, agg.Hosts(), fleet.NetFaultStats{})
	return &FleetView{Aggregate: agg, Replay: rep, Integrity: fi}, nil
}

// fleetRow is one (event, image-or-method) cell of the fleet aggregate.
type fleetRow struct {
	event, image string
	samples      uint64
}

// fleetRows folds the aggregate per (event, label) over the sample
// deltas generated in [from, to) on the sender cycle clock
// (0, ^uint64(0) = everything). JIT keys are symbolized through the
// host's replicated epoch code-map chain — the whole point of shipping
// maps over the wire: a fleet report names the compiled method, not an
// anonymous JIT bucket. Keys no chain resolves fold under the JIT
// image name and are counted in unresolved.
func fleetRows(agg *fleet.Aggregate, from, to uint64) (rows []fleetRow, unresolved uint64) {
	cells := make(map[[2]string]uint64)
	for _, host := range agg.Hosts() {
		var chain *core.MapChain
		if maps := agg.Maps(host); maps != nil {
			chain = core.NewMapChain(maps)
		}
		for _, rec := range agg.Records(host) {
			if rec.Kind != fleet.KindDelta || rec.At < from || rec.At >= to {
				continue
			}
			for k, c := range rec.Counts {
				label := k.Image
				if k.JIT {
					label = oprofile.JITImageName
					if chain != nil {
						if entry, _, ok := chain.Resolve(k.Epoch, k.Off); ok {
							label = entry.Sig
						} else {
							unresolved += c
						}
					} else {
						unresolved += c
					}
				}
				cells[[2]string{k.Event.String(), label}] += c
			}
		}
	}
	rows = make([]fleetRow, 0, len(cells))
	for cell, c := range cells {
		rows = append(rows, fleetRow{event: cell[0], image: cell[1], samples: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].samples != rows[j].samples {
			return rows[i].samples > rows[j].samples
		}
		if rows[i].event != rows[j].event {
			return rows[i].event < rows[j].event
		}
		return rows[i].image < rows[j].image
	})
	return rows, unresolved
}

// Render prints the whole fleet aggregate (see RenderWindow).
func (v *FleetView) Render(maxRows int) string {
	return v.RenderWindow(maxRows, 0, ^uint64(0))
}

// RenderWindow prints the fleet aggregate the way vipreport -fleet
// shows it — per-image (and per-JIT-method, via the replicated code
// maps) totals with shares, per-host totals, the integrity block —
// restricted to sample deltas generated in [from, to) cycles.
func (v *FleetView) RenderWindow(maxRows int, from, to uint64) string {
	var sb strings.Builder
	windowed := from != 0 || to != ^uint64(0)
	rows, unresolved := fleetRows(v.Aggregate, from, to)
	var total uint64
	for _, r := range rows {
		total += r.samples
	}
	fmt.Fprintf(&sb, "fleet aggregate: %d samples from %d host(s), %d store frame(s)",
		total, len(v.Aggregate.Hosts()), v.Replay.Deltas+v.Replay.Maps+v.Replay.Duplicates)
	if v.Replay.ManifestGen > 0 {
		fmt.Fprintf(&sb, ", generation %d", v.Replay.ManifestGen)
	}
	if windowed {
		fmt.Fprintf(&sb, "\nwindow: [%d, %d) cycles", from, to)
		if min, max, ok := v.Aggregate.TimeBounds(); ok {
			fmt.Fprintf(&sb, " of [%d, %d]", min, max)
		}
	}
	sb.WriteString("\n\n")
	fmt.Fprintf(&sb, "%-10s %7s  %-24s %s\n", "samples", "%", "image/method", "event")
	for i, r := range rows {
		if maxRows > 0 && i >= maxRows {
			fmt.Fprintf(&sb, "  ... %d more row(s)\n", len(rows)-i)
			break
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.samples) / float64(total)
		}
		fmt.Fprintf(&sb, "%-10d %6.2f%%  %-24s %s\n", r.samples, share, r.image, r.event)
	}
	if unresolved > 0 {
		fmt.Fprintf(&sb, "  (%d JIT samples unresolved by the replicated maps)\n", unresolved)
	}
	sb.WriteString("\nper-host:\n")
	for _, h := range v.Aggregate.Hosts() {
		fmt.Fprintf(&sb, "  host%02d  %8d samples  (max seq %d, %d map epoch(s))\n",
			h, v.Aggregate.HostTotal(h), v.Aggregate.MaxSeq(h), v.Aggregate.MapEpochs(h))
	}
	sb.WriteString("\n")
	sb.WriteString(fleet.FormatFleetIntegrity(v.Integrity))
	return sb.String()
}

// DiffFleetArchives compares two fleet archives and prints the
// (event, image) cells whose share of the fleet-wide total moved the
// most — the fleet-level analogue of vipdiff's symbol view.
func DiffFleetArchives(beforeDir, afterDir string, maxRows int) (string, error) {
	before, err := LoadFleetArchive(beforeDir)
	if err != nil {
		return "", fmt.Errorf("before: %w", err)
	}
	after, err := LoadFleetArchive(afterDir)
	if err != nil {
		return "", fmt.Errorf("after: %w", err)
	}
	share := func(v *FleetView) map[[2]string]float64 {
		total := v.Aggregate.Total()
		out := make(map[[2]string]float64)
		if total == 0 {
			return out
		}
		rows, _ := fleetRows(v.Aggregate, 0, ^uint64(0))
		for _, r := range rows {
			out[[2]string{r.event, r.image}] = 100 * float64(r.samples) / float64(total)
		}
		return out
	}
	bs, as := share(before), share(after)
	type move struct {
		event, image string
		before, af   float64
	}
	var moves []move
	seen := make(map[[2]string]bool)
	for cell := range bs {
		seen[cell] = true
	}
	for cell := range as {
		seen[cell] = true
	}
	for cell := range seen {
		moves = append(moves, move{event: cell[0], image: cell[1], before: bs[cell], af: as[cell]})
	}
	abs := func(f float64) float64 {
		if f < 0 {
			return -f
		}
		return f
	}
	sort.Slice(moves, func(i, j int) bool {
		di, dj := abs(moves[i].af-moves[i].before), abs(moves[j].af-moves[j].before)
		if di != dj {
			return di > dj
		}
		if moves[i].event != moves[j].event {
			return moves[i].event < moves[j].event
		}
		return moves[i].image < moves[j].image
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "fleet diff: %d -> %d samples\n\n", before.Aggregate.Total(), after.Aggregate.Total())
	fmt.Fprintf(&sb, "%8s  %8s  %8s  %-24s %s\n", "before", "after", "delta", "image", "event")
	for i, mv := range moves {
		if maxRows > 0 && i >= maxRows {
			fmt.Fprintf(&sb, "  ... %d more row(s)\n", len(moves)-i)
			break
		}
		fmt.Fprintf(&sb, "%7.2f%%  %7.2f%%  %+7.2f%%  %-24s %s\n",
			mv.before, mv.af, mv.af-mv.before, mv.image, mv.event)
	}
	degraded := func(v *FleetView) string {
		if v.Integrity.Degraded() {
			return "DEGRADED"
		}
		return "clean"
	}
	fmt.Fprintf(&sb, "\nintegrity: before %s, after %s\n", degraded(before), degraded(after))
	return sb.String(), nil
}
