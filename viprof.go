// Package viprof is a full-system reproduction of "VIProf: Vertically
// Integrated Full-System Performance Profiler" (Mousa, Krintz, Youseff,
// Wolski — IPDPS Workshops 2007).
//
// VIProf extends a system-wide, hardware-counter sampling profiler
// (OProfile) so that samples landing in dynamically generated JIT code
// are attributed to the Java methods that own the code — even while the
// VM recompiles methods and its garbage collector relocates code bodies.
// The key mechanisms are a runtime-profiler registration of the VM's
// JIT region, a VM agent that writes partial code maps at every GC
// *execution epoch*, and post-processing that searches the epoch map
// chain backwards to find the most recent method to occupy a sampled
// address.
//
// Because the original runs on Pentium 4 hardware counters, a Linux
// kernel module and Jikes RVM, this package reproduces the entire stack
// as a deterministic simulation: a cycle-level CPU with performance
// counters, caches and NMIs; an operating system with processes,
// scheduling and a disk; a Jikes-RVM-style virtual machine with a real
// bytecode interpreter, two JIT tiers and a moving generational
// collector; the OProfile baseline; and VIProf itself. See DESIGN.md
// for the system inventory and EXPERIMENTS.md for the paper's figures
// reproduced on this substrate.
//
// # Quick start
//
//	out, err := viprof.ProfileBenchmark("ps", viprof.Options{Scale: 0.2})
//	if err != nil { ... }
//	fmt.Println(out.RenderReport(20))
//
// For custom programs, build bytecode with NewAsm/NewProgram, create a
// machine, start a Session and launch the program under it; see
// examples/quickstart.
package viprof

import (
	"bytes"
	"fmt"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/core"
	"viprof/internal/cpu"
	"viprof/internal/harness"
	"viprof/internal/hpc"
	"viprof/internal/image"
	"viprof/internal/jvm"
	"viprof/internal/jvm/bytecode"
	"viprof/internal/jvm/classes"
	"viprof/internal/jvm/jit"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
	"viprof/internal/workload"
)

// Simulation substrate types.
type (
	// Machine is the simulated computer: one core plus the OS kernel.
	Machine = kernel.Machine
	// Process is a simulated OS process.
	Process = kernel.Process
	// Address is a simulated virtual address.
	Address = addr.Address
	// Event is a hardware performance counter event.
	Event = hpc.Event
)

// Program construction types.
type (
	// Program is a closed set of methods with an entry point, executed
	// by the simulated VM.
	Program = classes.Program
	// Method is one bytecode method.
	Method = classes.Method
	// Asm assembles bytecode with symbolic labels.
	Asm = bytecode.Asm
	// Instr is one bytecode instruction.
	Instr = bytecode.Instr
	// Opcode is a bytecode operation.
	Opcode = bytecode.Opcode
)

// Profiling types.
type (
	// Session is a running VIProf profiling session.
	Session = core.Session
	// Report is a symbol-level profile report (both VIProf's and plain
	// OProfile's post-processing produce this shape).
	Report = oprofile.Report
	// VM is a running virtual machine instance.
	VM = jvm.VM
	// Spec describes a synthetic benchmark workload.
	Spec = workload.Spec
)

// Profiled hardware events (Figure 1 uses both).
const (
	// EventCycles is GLOBAL_POWER_EVENTS: non-halted cycles, i.e. time.
	EventCycles = hpc.GlobalPowerEvents
	// EventL2Miss is BSQ_CACHE_REFERENCE: L2 data cache misses.
	EventL2Miss = hpc.BSQCacheReference
)

// ClockHz is the simulated core frequency; simulated seconds are
// cycles/ClockHz.
const ClockHz = cpu.ClockHz

// NewMachine builds a simulated machine. The seed drives scheduler
// jitter and other modelled system noise; distinct seeds model the
// run-to-run variance of §4.1's repeated-runs protocol.
func NewMachine(seed int64) *Machine {
	return kernel.NewMachine(cpu.New(hpc.NewBank(), cache.DefaultHierarchy()), seed)
}

// NewProgram returns an empty program with the given number of static
// (GC root) slots.
func NewProgram(name string, staticSlots int) *Program {
	return classes.NewProgram(name, staticSlots)
}

// NewAsm returns a bytecode assembler.
func NewAsm() *Asm { return bytecode.NewAsm() }

// EventConfig arms one counter at a sampling period.
type EventConfig = oprofile.EventConfig

// SessionConfig parameterizes StartSession.
type SessionConfig = core.Config

// VMConfig parameterizes LaunchVM.
type VMConfig = jvm.Config

// StartSession arms the full VIProf pipeline (extended driver, daemon,
// JIT registry) on a machine. Launch VMs with Session.LaunchJVM so they
// register their JIT regions and agents.
func StartSession(m *Machine, cfg SessionConfig) (*Session, error) {
	return core.Start(m, cfg)
}

// Benchmarks returns the names of the paper's benchmark suite
// (pseudojbb, JVM98, antlr, bloat, fop, hsqldb, pmd, xalan, ps).
func Benchmarks() []string { return workload.Names() }

// BenchmarkSpec returns the workload spec for a named benchmark.
func BenchmarkSpec(name string) (Spec, error) { return workload.ByName(name) }

// BuildWorkload generates a benchmark program at the given scale
// (fraction of the calibrated full-length run; 1.0 reproduces Figure 3
// times).
func BuildWorkload(s Spec, scale float64) (*Program, error) {
	return workload.Build(s, scale)
}

// Profiler selects the profiling configuration for ProfileBenchmark.
type Profiler int

// Profiler kinds. The zero value selects VIProf.
const (
	// ProfilerVIProf runs the full VIProf pipeline (the default).
	ProfilerVIProf Profiler = iota
	// ProfilerNone runs the benchmark unprofiled (the Figure 3 baseline).
	ProfilerNone
	// ProfilerOProfile runs the unmodified baseline profiler.
	ProfilerOProfile
)

// kind maps the public enum to the harness configuration.
func (p Profiler) kind() harness.ProfKind {
	switch p {
	case ProfilerNone:
		return harness.ProfNone
	case ProfilerOProfile:
		return harness.ProfOprofile
	default:
		return harness.ProfVIProf
	}
}

// Options tune ProfileBenchmark.
type Options struct {
	// Profiler selects the pipeline; default ProfilerVIProf.
	Profiler Profiler
	// Period is the cycles-event sampling period (default 90_000, the
	// paper's median frequency).
	Period uint64
	// MissPeriod, when nonzero, also samples L2 misses (Figure 1's
	// two-event setup). Default 0 (time only); RunFigure1 uses both.
	MissPeriod uint64
	// Scale is the workload scale factor; default 1.0 (full length).
	Scale float64
	// Seed drives modelled noise; default 1.
	Seed int64
	// CallGraphDepth enables cross-layer call-graph sampling.
	CallGraphDepth int
	// Xen runs the stack on the simulated hypervisor layer (the
	// paper's §5 future work): hypervisor samples appear as xen-syms
	// rows in the report, as XenoProf reports them.
	Xen bool
	// NoRecovery skips the session's startup crash-recovery pass.
	// The default (false) matches the deployed daemon, which always
	// salvages whatever a previous run left in var/ before arming.
	NoRecovery bool
	// Cores sets the simulated machine's core count (0 or 1 = the
	// classic single-core machine). Multi-core runs shard the
	// profiling pipeline per CPU and the report gains a per-CPU
	// breakdown (DESIGN §16).
	Cores int
}

func (o *Options) fill() {
	if o.Period == 0 {
		o.Period = 90_000
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Outcome is the result of a profiled benchmark run.
type Outcome struct {
	Bench string
	// Seconds is the benchmark's simulated wall time.
	Seconds float64
	// Report is the post-processed profile (nil for ProfilerNone).
	Report *Report
	// Events is the report's column order.
	Events []Event
	// VMStats summarizes VM activity (compiles, GCs, bytecodes).
	VMStats jvm.Stats

	res *harness.Result
}

// RenderReport formats the report like the paper's Figure 1 (at most
// maxRows rows; 0 = all).
func (o *Outcome) RenderReport(maxRows int) string {
	if o.Report == nil {
		return "(no profiler was attached)"
	}
	var buf bytes.Buffer
	if err := oprofile.Format(&buf, o.Report, maxRows); err != nil {
		return err.Error()
	}
	return buf.String()
}

// ProfileBenchmark runs one of the paper's benchmarks under the chosen
// profiler on a fresh simulated machine and returns the measurement and
// (for profiled runs) the post-processed report.
func ProfileBenchmark(name string, opt Options) (*Outcome, error) {
	opt.fill()
	spec, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	rc := harness.RunConfig{
		Kind:           opt.Profiler.kind(),
		Period:         opt.Period,
		MissPeriod:     opt.MissPeriod,
		CallGraphDepth: opt.CallGraphDepth,
		Noise:          true,
		Xen:            opt.Xen,
	}
	res, err := harness.RunOnce(spec, rc, harness.Options{
		Scale: opt.Scale, Seed: opt.Seed, KeepSession: true,
		NoRecovery: opt.NoRecovery, Cores: opt.Cores,
	})
	if err != nil {
		return nil, err
	}
	out := &Outcome{
		Bench:   name,
		Seconds: res.Seconds,
		VMStats: res.VMStats,
		res:     res,
	}
	switch opt.Profiler.kind() {
	case harness.ProfVIProf:
		s := res.Session
		rep, _, err := s.Report(s.Images(res.VM), map[string]int{res.Proc.Name: res.Proc.PID})
		if err != nil {
			return nil, err
		}
		out.Report = rep
		out.Events = s.Events()
	case harness.ProfOprofile:
		images := core.StandardImages(res.Machine, res.VM)
		events := []hpc.Event{hpc.GlobalPowerEvents}
		if opt.MissPeriod > 0 {
			events = append(events, hpc.BSQCacheReference)
		}
		rep, err := oprofile.Opreport(res.Machine.Kern.Disk(), images, events)
		if err != nil {
			return nil, err
		}
		out.Report = rep
		out.Events = events
	}
	return out, nil
}

// Session accessors on the raw result, for advanced post-processing
// (call graphs, code-map inspection).

// RawSession returns the underlying VIProf session (nil unless the run
// used ProfilerVIProf).
func (o *Outcome) RawSession() *Session {
	if o.res == nil {
		return nil
	}
	return o.res.Session
}

// RawMachine returns the simulated machine the run executed on.
func (o *Outcome) RawMachine() *Machine {
	if o.res == nil {
		return nil
	}
	return o.res.Machine
}

// RawVM returns the VM instance of the run.
func (o *Outcome) RawVM() *VM {
	if o.res == nil {
		return nil
	}
	return o.res.VM
}

// RawProcess returns the VM's OS process.
func (o *Outcome) RawProcess() *Process {
	if o.res == nil {
		return nil
	}
	return o.res.Proc
}

// Images assembles the symbol tables for the run's machine and VM.
func (o *Outcome) Images() map[string]*image.Image {
	if o.res == nil {
		return nil
	}
	if o.res.Session != nil {
		return o.res.Session.Images(o.res.VM)
	}
	return core.StandardImages(o.res.Machine, o.res.VM)
}

// Figures — the paper's evaluation, re-exported from the harness.

// RunFigure1 regenerates the paper's Figure 1: the DaCapo ps benchmark
// profiled by VIProf and by plain OProfile with both events armed,
// rendered side by side.
func RunFigure1(scale float64, seed int64, maxRows int) (string, error) {
	fig, err := harness.Figure1(scale, seed, maxRows)
	if err != nil {
		return "", err
	}
	return fig.Rendered, nil
}

// RunFigure2 regenerates the paper's Figure 2 (profiling slowdowns) at
// the given scale with the given repetition count, returning the
// formatted table.
func RunFigure2(scale float64, runs int, seed int64) (string, error) {
	fig, err := harness.Figure2(scale, runs, seed)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := fig.Format(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// RunFigure3 regenerates the paper's Figure 3 (base execution times).
func RunFigure3(scale float64, runs int, seed int64) (string, error) {
	fig, err := harness.Figure3(scale, runs, seed)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := fig.Format(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// Version identifies this reproduction.
const Version = "1.0.0"

// Bytecode opcodes, re-exported for program construction with Asm.
const (
	OpNop       = bytecode.Nop
	OpConst     = bytecode.Const
	OpLoad      = bytecode.Load
	OpStore     = bytecode.Store
	OpDup       = bytecode.Dup
	OpPop       = bytecode.Pop
	OpAdd       = bytecode.Add
	OpSub       = bytecode.Sub
	OpMul       = bytecode.Mul
	OpDiv       = bytecode.Div
	OpMod       = bytecode.Mod
	OpNeg       = bytecode.Neg
	OpAnd       = bytecode.And
	OpOr        = bytecode.Or
	OpXor       = bytecode.Xor
	OpShl       = bytecode.Shl
	OpShr       = bytecode.Shr
	OpCmpLT     = bytecode.CmpLT
	OpCmpLE     = bytecode.CmpLE
	OpCmpEQ     = bytecode.CmpEQ
	OpCmpNE     = bytecode.CmpNE
	OpCmpGT     = bytecode.CmpGT
	OpCmpGE     = bytecode.CmpGE
	OpJmp       = bytecode.Jmp
	OpJmpZ      = bytecode.JmpZ
	OpJmpNZ     = bytecode.JmpNZ
	OpCall      = bytecode.Call
	OpRet       = bytecode.Ret
	OpRetVoid   = bytecode.RetVoid
	OpNew       = bytecode.New
	OpNewArray  = bytecode.NewArray
	OpALoad     = bytecode.ALoad
	OpAStore    = bytecode.AStore
	OpArrayLen  = bytecode.ArrayLen
	OpGetField  = bytecode.GetField
	OpPutField  = bytecode.PutField
	OpGetRef    = bytecode.GetRef
	OpPutRef    = bytecode.PutRef
	OpGetStatic = bytecode.GetStatic
	OpPutStatic = bytecode.PutStatic
	OpIntrinsic = bytecode.Intrinsic
)

// Intrinsic identifiers (the Intrinsic opcode's A operand): native
// runtime services that execute in libc or the kernel.
const (
	// IntrMemset models libc memset over a scratch buffer.
	IntrMemset = int32(bytecode.IntrMemset)
	// IntrArrayCopy models System.arraycopy between two arrays.
	IntrArrayCopy = int32(bytecode.IntrArrayCopy)
	// IntrWrite models a write syscall (kernel activity).
	IntrWrite = int32(bytecode.IntrWrite)
	// IntrCurrentTime reads the cycle clock (cheap native call).
	IntrCurrentTime = int32(bytecode.IntrCurrentTime)
)

// Call-graph types (the cross-layer extension of §4.2).
type (
	// CallGraph aggregates sampled caller→callee arcs.
	CallGraph = core.CallGraph
	// Arc is one caller→callee edge between resolved symbols.
	Arc = core.Arc
)

// CallGraph folds the run's sampled call stacks into a cross-layer
// call graph, resolving every frame with the full VIProf resolver
// (epoch code maps for JIT frames, RVM.map for the boot image, ELF
// tables for native code). The run must have used ProfilerVIProf with
// Options.CallGraphDepth > 0. Each call drains the session's stack
// buffer, so call it once.
func (o *Outcome) CallGraph() (*CallGraph, error) {
	s := o.RawSession()
	if s == nil {
		return nil, fmt.Errorf("viprof: call graphs need a VIProf session")
	}
	stacks := s.Prof.Driver.DrainStacks()
	vm, m, proc := o.RawVM(), o.RawMachine(), o.RawProcess()
	_, res, err := s.Report(s.Images(vm), map[string]int{proc.Name: proc.PID})
	if err != nil {
		return nil, err
	}
	lookup := func(pid int, pc Address) (string, Address, bool) {
		lo, hi := vm.Heap().Bounds()
		if pc >= lo && pc < hi {
			return "", pc, true
		}
		if p, ok := m.Kern.Process(pid); ok {
			if v, found := p.Space.Lookup(pc); found {
				return v.Image, v.ImageOffset(pc), false
			}
		}
		return "", 0, false
	}
	return core.BuildCallGraph(stacks, func(pid int, pc Address, epoch int) string {
		return res.ResolvePC(lookup, pid, pc, epoch)
	}), nil
}

// Runtime personalities — the same VM engine running as different
// products, all profiled by the unchanged pipeline (§2's generality
// claim).
type PersonalityConfig = jvm.Personality

// JikesPersonality returns the paper's prototype target (the default).
func JikesPersonality() *PersonalityConfig { return jvm.Jikes() }

// CLRPersonality returns a Microsoft-.NET-style runtime: mscorwks
// boot image, CLR.map symbol map, CLR service symbols.
func CLRPersonality() *PersonalityConfig { return jvm.CLR() }

// JVM98Members returns the seven individual SpecJVM98 benchmarks
// (compress, jess, db, javac, mpegaudio, mtrt, jack). The Figure 2/3
// suite carries the composite "JVM98" entry; the members are available
// through BenchmarkSpec/ProfileBenchmark by short name.
func JVM98Members() []Spec { return workload.JVM98Members() }

// StartVMForBench launches a program unprofiled with an explicit OSR
// setting; the OSR ablation benchmark uses it. Most callers want
// ProfileBenchmark or Session.LaunchJVM instead.
func StartVMForBench(m *Machine, prog *Program, disableOSR bool) (*VM, *Process, error) {
	return jvm.Launch(m, prog, jvm.Config{DisableOSR: disableOSR})
}

// Annotate produces an opannotate-style per-bytecode sample listing for
// a method of a profiled run (by fully qualified signature). It needs a
// live VIProf session (the body layout does not persist in archives).
func (o *Outcome) Annotate(signature string) (string, error) {
	s := o.RawSession()
	vm := o.RawVM()
	proc := o.RawProcess()
	if s == nil || vm == nil {
		return "", fmt.Errorf("viprof: annotation needs a live VIProf session")
	}
	var body *jvmBody
	for _, meth := range o.methods() {
		if meth.Signature() == signature {
			if b, ok := vm.Body(meth); ok {
				body = b
			}
			break
		}
	}
	if body == nil {
		return "", fmt.Errorf("viprof: no compiled body for %q", signature)
	}
	disk := o.RawMachine().Kern.Disk()
	data, err := disk.Read("var/lib/oprofile/samples.log")
	if err != nil {
		return "", err
	}
	counts, sal, err := oprofile.ReadCountsSalvage(data)
	if err != nil {
		return "", err
	}
	chain, err := core.ReadMapChain(disk, proc.PID)
	if err != nil {
		return "", err
	}
	rows := core.AnnotateBody(counts, chain, body, proc.Name)
	var buf bytes.Buffer
	if sal.Lossy() {
		fmt.Fprintf(&buf, "WARNING: sample file damaged — %d records dropped (%d bytes); annotation built from the %d that survived\n",
			sal.DroppedRecords, sal.DroppedBytes, sal.Records)
	}
	if err := core.FormatAnnotation(&buf, signature, rows, o.Events); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// jvmBody aliases the compiled-body type for Annotate's internals.
type jvmBody = jit.CodeBody

// methods lists the profiled program's methods.
func (o *Outcome) methods() []*Method {
	if o.res == nil || o.res.VM == nil {
		return nil
	}
	return o.res.VM.Program().Methods
}

// RunActivityTable runs the suite once under VIProf at the 90K median
// frequency and renders per-benchmark internals (compiles, epochs, map
// volume, JIT sample share) — the quantities the paper's overhead
// explanations appeal to.
func RunActivityTable(scale float64, seed int64) (string, error) {
	act, err := harness.ActivityTable(scale, seed)
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := act.Format(&buf); err != nil {
		return "", err
	}
	return buf.String(), nil
}
