package viprof

// The deterministic memory-operand stream behind BenchmarkExecMemBatch
// and `vipbench -fig membatch`. The stream is shaped like the data-heavy
// phases the batched memory path exists for: arraycopy block copies
// (alternating read and write runs over hot few-KiB arrays, the shape
// IntrArrayCopy emits), GC semispace copy sweeps
// (long sequential 8-byte-stride walks over cold to-space), memset fills,
// and a minority of scattered pointer-chasing loads and instruction-only
// dispatch blocks so the horizon logic is exercised, not bypassed. Both
// benchmark sides replay the identical stream through the identical entry
// points; the per-op side only has batching disabled, so the measured
// delta is exactly the memory-run engine.

import (
	"math/rand"

	"viprof/internal/addr"
	"viprof/internal/cache"
	"viprof/internal/cpu"
	"viprof/internal/hpc"
)

// MemBenchOps is the stream length of one repetition: roughly the
// memory-operand volume of a paper-scale fop run (arraycopy + GC copy
// dominated).
const MemBenchOps = 8_000_000

// MemBenchCore builds a core configured like the benchmark harness: both
// paper events armed at the most aggressive periods, an NMI handler
// charging a driver-sized instruction-only cost, and the batching engine
// switched per the ablation side.
func MemBenchCore(batched bool) *cpu.Core {
	bank := hpc.NewBank()
	bank.Program(hpc.GlobalPowerEvents, 45_000)
	bank.Program(hpc.BSQCacheReference, 90_000)
	c := cpu.New(bank, cache.DefaultHierarchy())
	c.SetNMIHandler(func(core *cpu.Core, _ cpu.Snapshot, _ hpc.Event) {
		core.ExecRange(addr.KernelBase+0x80, 120, 4, 1)
	})
	c.SetBatching(batched)
	return c
}

// MemBatchStream drives ops micro-ops of the memory-operand stream
// through the core and returns the final cycle count, which both sides
// of the ablation must agree on bit for bit.
func MemBatchStream(c *cpu.Core, ops int) uint64 {
	r := rand.New(rand.NewSource(11))
	pc := addr.Address(0x6000_0000)
	const (
		heap    = addr.Address(0x8000_0000) // arraycopy hot arrays live here
		toSpace = addr.Address(0x8C00_0000) // GC copy streams into this semispace
		scratch = addr.Address(0x9800_0000) // memset target, one hot 4 KiB buffer
	)
	gcCursor := toSpace
	for done := 0; done < ops; {
		switch r.Intn(10) {
		case 0, 1, 2, 3, 4, 5:
			// Arraycopy block copy: 32-op blocks alternating src reads
			// and dst writes, 8-byte element stride, the shape
			// IntrArrayCopy emits. The operands are the same few-KiB
			// arrays copied over and over — an L1-resident working set,
			// the way a JVM renderer re-copies its buffers — so the
			// stream is hit-dominated: the per-op side pays a full probe
			// for every one of those guaranteed hits, the batched side
			// one probe per line plus arithmetic.
			n := 128 + r.Intn(384)
			src := heap + addr.Address(r.Intn(1<<9)*8)
			dst := heap + 1<<13 + addr.Address(r.Intn(1<<9)*8)
			for base := 0; base < n; base += 128 {
				bn := n - base
				if bn > 128 {
					bn = 128
				}
				sn := (bn + 1) / 2
				dn := bn / 2
				c.ExecMemBatch(pc, sn, 4, 1, src, 8)
				pc += addr.Address(4 * sn)
				src += addr.Address(8 * sn)
				if dn > 0 {
					c.ExecMemBatch(pc, dn, 4, 1, dst, 8)
					pc += addr.Address(4 * dn)
					dst += addr.Address(8 * dn)
				}
			}
			done += n
		case 6:
			// GC semispace copy: alternating reads of live from-space
			// objects (mutator-warm) and sequential stride-8 writes into
			// cold to-space. The cold halves miss on both sides
			// identically — the batched win there is only the tail ops
			// of each line.
			n := 256 + r.Intn(1024)
			from := heap + addr.Address(r.Intn(1<<9)*8)
			for base := 0; base < n; base += 128 {
				bn := n - base
				if bn > 128 {
					bn = 128
				}
				sn := (bn + 1) / 2
				dn := bn / 2
				c.ExecMemBatch(pc, sn, 4, 1, from, 8)
				pc += addr.Address(4 * sn)
				from += addr.Address(8 * sn)
				if dn > 0 {
					c.ExecMemBatch(pc, dn, 4, 1, gcCursor, 8)
					pc += addr.Address(4 * dn)
					gcCursor += addr.Address(8 * dn)
				}
			}
			if gcCursor >= toSpace+1<<22 {
				gcCursor = toSpace
			}
			done += n
		case 7:
			// Memset fill of the hot scratch buffer: one bulk run, 16
			// bytes per op.
			n := 128 + r.Intn(256)
			c.ExecMemBatch(pc, n, 4, 1, scratch+addr.Address(r.Intn(1<<6)*64), 16)
			pc += addr.Address(4 * n)
			done += n
		case 8:
			// Streaming writes issued op by op, the shape the JVM's
			// memory-operand bytecode loop feeds BatchMemOp, with an
			// occasional line-hopping pointer chase that falls back to
			// the precise path on both sides.
			n := 128 + r.Intn(256)
			stream := heap + addr.Address(r.Intn(1<<9)*8)
			for j := 0; j < n; j++ {
				if j%32 == 31 {
					c.BatchMemOp(pc, 1, heap+addr.Address(r.Intn(1<<20)*64))
				} else {
					c.BatchMemOp(pc, 1, stream)
					stream += 8
				}
				pc += 4
			}
			done += n
		default:
			// Bytecode-style dispatch block, then a "call" elsewhere.
			n := 4 + r.Intn(12)
			for j := 0; j < n; j++ {
				c.BatchOp(pc, uint32(1+j%3))
				pc += 4
			}
			done += n
			pc = addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
		}
		if pc >= 0x7000_0000 {
			pc = addr.Address(0x6000_0000 + r.Intn(1<<20)*4)
		}
	}
	c.FlushBatch()
	return c.Cycles()
}
