package viprof

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"viprof/internal/core"
	"viprof/internal/hpc"
	"viprof/internal/image"
	"viprof/internal/kernel"
	"viprof/internal/oprofile"
)

// Profile archives. Like oparchive for real OProfile data, a profiled
// run can be dumped to a real directory — sample files, code maps,
// RVM.map, plus the image symbol tables and a manifest — and
// post-processed later by vipreport (or LoadArchivedReport) with no
// simulation state.

const (
	manifestPath = "viprof-manifest.txt"
	imageMapDir  = "images"
)

// DumpProfile archives the run's profile data under dir.
func (o *Outcome) DumpProfile(dir string) error {
	m := o.RawMachine()
	if m == nil {
		return fmt.Errorf("viprof: run kept no machine state")
	}
	disk := m.Kern.Disk()
	images := o.Images()
	names := make([]string, 0, len(images))
	for name := range images {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var buf bytes.Buffer
		if err := image.WriteRVMMap(&buf, images[name]); err != nil {
			return err
		}
		disk.Append(imageMapDir+"/"+name+".map", buf.Bytes())
	}
	var man bytes.Buffer
	for _, ev := range o.Events {
		fmt.Fprintf(&man, "event %d\n", int(ev))
	}
	if p := o.RawProcess(); p != nil {
		fmt.Fprintf(&man, "vm %d %s\n", p.PID, p.Name)
	}
	disk.Append(manifestPath, man.Bytes())
	return disk.DumpTo(dir)
}

// LoadArchivedReport rebuilds the vertically integrated report from a
// directory written by DumpProfile.
func LoadArchivedReport(dir string) (*Report, error) {
	disk, err := kernel.LoadDiskFrom(dir)
	if err != nil {
		return nil, err
	}
	//viplint:allow record-frame manifest is line-oriented plain text validated field-by-field by this parser
	manData, err := disk.Read(manifestPath)
	if err != nil {
		return nil, fmt.Errorf("viprof: archive has no manifest: %v", err)
	}
	var events []Event
	vmPIDs := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(manData))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		switch {
		case len(fields) == 2 && fields[0] == "event":
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("viprof: bad manifest event: %v", err)
			}
			events = append(events, hpc.Event(n))
		case len(fields) >= 3 && fields[0] == "vm":
			pid, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("viprof: bad manifest vm line: %v", err)
			}
			vmPIDs[strings.Join(fields[2:], " ")] = pid
		}
	}
	images := make(map[string]*image.Image)
	for _, p := range disk.List() {
		if !strings.HasPrefix(p, imageMapDir+"/") || !strings.HasSuffix(p, ".map") {
			continue
		}
		name := strings.TrimSuffix(strings.TrimPrefix(p, imageMapDir+"/"), ".map")
		//viplint:allow record-frame RVM.map is the legacy line-oriented text format; ReadRVMMap fails per-line, a torn tail loses at most trailing symbols
		data, err := disk.Read(p)
		if err != nil {
			return nil, err
		}
		im, err := image.ReadRVMMap(strings.NewReader(string(data)), name)
		if err != nil {
			return nil, fmt.Errorf("viprof: image map %s: %v", name, err)
		}
		images[name] = im
	}
	rep, _, err := core.Vipreport(disk, images, vmPIDs, events)
	return rep, err
}

// LoadArchivedPhases rebuilds the per-epoch phase timeline for the
// archive's first VM process: sample share and hottest method per GC
// execution epoch (the VIVA agenda's phase view, derived entirely from
// VIProf's epoch tags).
func LoadArchivedPhases(dir string) (string, error) {
	disk, err := kernel.LoadDiskFrom(dir)
	if err != nil {
		return "", err
	}
	//viplint:allow record-frame manifest is line-oriented plain text validated field-by-field by this parser
	manData, err := disk.Read(manifestPath)
	if err != nil {
		return "", fmt.Errorf("viprof: archive has no manifest: %v", err)
	}
	var proc string
	var events []Event
	vmPIDs := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(manData))
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		switch {
		case len(fields) == 2 && fields[0] == "event":
			if n, err := strconv.Atoi(fields[1]); err == nil {
				events = append(events, hpc.Event(n))
			}
		case len(fields) >= 3 && fields[0] == "vm":
			pid, err := strconv.Atoi(fields[1])
			if err != nil {
				continue
			}
			name := strings.Join(fields[2:], " ")
			vmPIDs[name] = pid
			if proc == "" {
				proc = name
			}
		}
	}
	if proc == "" {
		return "", fmt.Errorf("viprof: archive manifest names no VM process")
	}
	data, err := disk.Read("var/lib/oprofile/samples.log")
	if err != nil {
		return "", err
	}
	counts, sal, err := oprofile.ReadCountsSalvage(data)
	if err != nil {
		return "", err
	}
	res, err := core.NewResolver(disk, nil, vmPIDs)
	if err != nil {
		return "", err
	}
	primary := EventCycles
	if len(events) > 0 {
		primary = events[0]
	}
	rows := core.PhaseBreakdown(counts, res, proc, primary)
	var buf bytes.Buffer
	if sal.Lossy() {
		fmt.Fprintf(&buf, "WARNING: sample file damaged — %d records dropped (%d bytes); timeline built from the %d that survived\n",
			sal.DroppedRecords, sal.DroppedBytes, sal.Records)
	}
	if err := core.FormatPhases(&buf, rows, primary); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// DiffArchives joins two archived reports on (image, symbol) and
// renders the biggest movers of the primary event's share.
func DiffArchives(beforeDir, afterDir string, maxRows int) (string, error) {
	before, err := LoadArchivedReport(beforeDir)
	if err != nil {
		return "", fmt.Errorf("viprof: before archive: %v", err)
	}
	after, err := LoadArchivedReport(afterDir)
	if err != nil {
		return "", fmt.Errorf("viprof: after archive: %v", err)
	}
	primary := EventCycles
	if len(before.Events) > 0 {
		primary = before.Events[0]
	}
	rows := core.DiffReports(before, after, primary)
	var buf bytes.Buffer
	if err := core.FormatDiff(&buf, rows, maxRows); err != nil {
		return "", err
	}
	return buf.String(), nil
}
